"""Latency-SLO exploration: max sustainable arrival rate per platform.

The serving question the paper's Fig 9 scenario ultimately poses is not
"how fast is one frame" but "how much open-loop traffic can this
configuration absorb before tail latency breaks the SLO". The explorer
answers it by sweeping arrival rate x platform through the
:mod:`repro.sweep` engine (so points shard across workers, persist in a
:class:`~repro.sweep.store.ResultStore`, and resume across runs) and
reducing each :class:`~repro.api.results.ServingReport` to an
:class:`SloPoint`: p50/p95/p99, goodput, drops, and whether the chosen
tail percentile met the SLO. The max sustainable rate of a platform is
the highest swept rate that still met it.

Also here: :func:`trace_scenario` / :func:`apply_trace`, which
materialize a scenario's (seeded) arrivals into an
:class:`~repro.serving.traces.ArrivalTrace` and replay one — the
round-trip that makes serving runs reproducible across processes.

Timeline-engine selection (``scalar`` vs ``vectorized``) deliberately
does **not** appear in these signatures: both engines are pinned to
bit-identical output, so the choice cannot affect a result and must not
join :class:`~repro.api.results.SimRequest` fingerprints (store keys
written by one engine resume runs under the other). Set the
``REPRO_ENGINE`` environment variable to steer exploration runs — sweep
workers inherit it across process boundaries.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace

from repro.api.results import ServingReport, SimRequest
from repro.api.session import Session
from repro.errors import ConfigError
from repro.schedule.streams import ScenarioSpec
from repro.serving.traces import ArrivalSpec, ArrivalTrace
from repro.sweep.grid import expand_platform_spec, grid_from_requests
from repro.sweep.workers import run_sweep


def scenario_at_rate(
    spec: ScenarioSpec,
    rate_hz: float,
    *,
    kind: str = "poisson",
    seed: int = 0,
) -> ScenarioSpec:
    """The scenario re-offered open-loop at ``rate_hz`` per stream.

    Streams that already declare an arrival process are re-rated (keeping
    their kind/seed/burst shape); closed-loop streams get a fresh
    ``kind`` process. Periodic cadences are dropped — the arrival process
    *is* the release schedule now. The scenario is renamed
    ``<name>@<rate>hz`` so every swept rate keeps a distinct identity.
    """
    if rate_hz <= 0:
        raise ConfigError(f"arrival rate must be > 0, got {rate_hz}")
    streams = []
    for stream in spec.streams:
        if stream.arrivals is not None:
            arrivals = stream.arrivals.at_rate(rate_hz)
        else:
            arrivals = ArrivalSpec(kind=kind, rate_hz=rate_hz, seed=seed)
        streams.append(replace(stream, period_s=None, arrivals=arrivals))
    return replace(
        spec,
        name=f"{spec.name}@{rate_hz:g}hz",
        streams=tuple(streams),
    )


def trace_scenario(spec: ScenarioSpec) -> ArrivalTrace:
    """Materialize every stream's release times into a replayable trace."""
    return ArrivalTrace(
        streams={
            stream.name: stream.release_times(spec.frames)
            for stream in spec.streams
        },
        scenario=spec.name,
        frames=spec.frames,
    )


def apply_trace(spec: ScenarioSpec, trace: ArrivalTrace) -> ScenarioSpec:
    """The scenario with its arrivals replaced by a recorded trace.

    Streams named in the trace release at the recorded times verbatim
    (``replay`` arrivals); streams the trace does not name keep their own
    release schedule. The trace's frame count (when recorded) becomes the
    scenario's, so a replay reproduces the original run exactly.
    """
    streams = []
    for stream in spec.streams:
        times = trace.streams.get(stream.name)
        if times is None:
            streams.append(stream)
            continue
        streams.append(
            replace(
                stream,
                period_s=None,
                arrivals=ArrivalSpec(kind="replay", times_s=times),
            )
        )
    return replace(
        spec,
        streams=tuple(streams),
        frames=trace.frames if trace.frames is not None else spec.frames,
    )


@dataclass(frozen=True)
class SloPoint:
    """One (platform, arrival rate) cell of the exploration.

    ``device``/``area_mm2``/``tdp_w`` carry the device-catalog metadata
    of catalog-backed platforms (``None`` for hand-coded ones) so a
    report can rank device classes by silicon or power efficiency.
    """

    platform: str
    rate_hz: float
    offered: int
    completed: int
    dropped: int
    missed: int
    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    tail_s: float
    goodput_fps: float
    meets_slo: bool
    device: str | None = None
    area_mm2: float | None = None
    tdp_w: float | None = None

    def to_dict(self) -> dict:
        payload = {
            "platform": self.platform,
            "rate_hz": self.rate_hz,
            "offered": self.offered,
            "completed": self.completed,
            "dropped": self.dropped,
            "missed": self.missed,
            "mean_s": self.mean_s,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
            "tail_s": self.tail_s,
            "goodput_fps": self.goodput_fps,
            "meets_slo": self.meets_slo,
        }
        # Catalog metadata only when present: non-catalog reports keep
        # their historical JSON shape.
        if self.device is not None:
            payload["device"] = self.device
            payload["area_mm2"] = self.area_mm2
            payload["tdp_w"] = self.tdp_w
        return payload


@dataclass(frozen=True)
class SloReport:
    """The exploration's outcome: every point plus the per-platform max.

    ``max_sustainable`` maps each platform to the highest swept rate
    whose tail percentile met the SLO (``None`` when no rate did).
    """

    scenario: str
    slo_s: float
    percentile_q: float
    max_drop_fraction: float
    points: tuple[SloPoint, ...] = ()
    mode: str = "grid"

    def platform_points(self, platform: str) -> tuple[SloPoint, ...]:
        return tuple(
            sorted(
                (p for p in self.points if p.platform == platform),
                key=lambda p: p.rate_hz,
            )
        )

    @property
    def platforms(self) -> tuple[str, ...]:
        seen: list[str] = []
        for point in self.points:
            if point.platform not in seen:
                seen.append(point.platform)
        return tuple(seen)

    def max_sustainable_rate(self, platform: str) -> float | None:
        meeting = [
            point.rate_hz
            for point in self.platform_points(platform)
            if point.meets_slo
        ]
        return max(meeting) if meeting else None

    @property
    def max_sustainable(self) -> dict[str, float | None]:
        return {
            platform: self.max_sustainable_rate(platform)
            for platform in self.platforms
        }

    def rate_per_mm2(self, platform: str) -> float | None:
        """Max sustainable rate per die mm² (``None`` without catalog data)."""
        rate = self.max_sustainable_rate(platform)
        if rate is None:
            return None
        for point in self.platform_points(platform):
            if point.area_mm2 and point.area_mm2 > 0:
                return rate / point.area_mm2
        return None

    def rank_by_slo_per_mm2(self) -> tuple[tuple[str, float], ...]:
        """Catalog platforms ranked by sustainable rate per die mm².

        The fleet question the catalog exists for: which device class
        sustains this SLO cheapest per unit of silicon. Platforms with no
        device metadata or no sustainable rate are omitted.
        """
        ranked = [
            (platform, efficiency)
            for platform in self.platforms
            if (efficiency := self.rate_per_mm2(platform)) is not None
        ]
        return tuple(
            sorted(ranked, key=lambda item: (-item[1], item[0]))
        )

    def to_dict(self) -> dict:
        payload = {
            "kind": "slo",
            "scenario": self.scenario,
            "mode": self.mode,
            "slo_s": self.slo_s,
            "percentile_q": self.percentile_q,
            "max_drop_fraction": self.max_drop_fraction,
            "max_sustainable": self.max_sustainable,
            "points": [point.to_dict() for point in self.points],
        }
        ranking = self.rank_by_slo_per_mm2()
        if ranking:
            payload["slo_per_mm2"] = {
                platform: efficiency for platform, efficiency in ranking
            }
        return payload

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def _point_from_report(
    report: ServingReport,
    platform: str,
    rate_hz: float,
    slo_s: float,
    percentile_q: float,
    max_drop_fraction: float,
) -> SloPoint:
    latencies = report.completed_latencies()
    tail = report.latency_percentile(percentile_q)
    meets = (
        report.completed > 0
        and tail <= slo_s
        and report.drop_fraction <= max_drop_fraction
    )
    # Deferred import: the catalog loader pulls in the platform registry,
    # which serving must not require at module load.
    from repro.catalog.loader import device_metadata

    metadata = device_metadata(platform) or {}
    return SloPoint(
        device=metadata.get("device"),
        area_mm2=metadata.get("area_mm2"),
        tdp_w=metadata.get("tdp_w"),
        platform=platform,
        rate_hz=rate_hz,
        offered=report.offered,
        completed=report.completed,
        dropped=report.dropped,
        missed=report.missed,
        mean_s=sum(latencies) / len(latencies) if latencies else 0.0,
        p50_s=report.p50_s,
        p95_s=report.p95_s,
        p99_s=report.p99_s,
        tail_s=tail,
        goodput_fps=report.goodput_fps,
        meets_slo=meets,
    )


def _run_cells(
    scenario: ScenarioSpec,
    cells,
    *,
    slo_s: float,
    percentile_q: float,
    max_drop_fraction: float,
    kind: str,
    seed: int,
    session: Session | None,
    jobs: int,
    store,
    resume: bool,
    tag: str | None,
) -> tuple[SloPoint, ...]:
    """Evaluate (platform, rate) cells through the sweep engine.

    Both search modes funnel through here, and the requests are built
    identically — same ``scenario_at_rate`` renaming, same fingerprint
    extras — so grid points and bisect probes share store keys: results
    from one mode resume the other.
    """
    requests = []
    for platform, rate in cells:
        rated = replace(
            scenario_at_rate(scenario, rate, kind=kind, seed=seed),
            platform=None,
        )
        requests.append(
            SimRequest(
                platform=platform,
                scenario=rated,
                serving=True,
                tag=tag,
            )
        )
    grid = grid_from_requests(
        requests, framework_overhead_s=scenario.framework_overhead_s
    )
    result = run_sweep(
        grid, jobs=jobs, store=store, resume=resume, session=session
    )
    return tuple(
        _point_from_report(
            report, platform, rate, slo_s, percentile_q, max_drop_fraction
        )
        for (platform, rate), report in zip(cells, result.reports)
    )


#: The rate-search strategies :func:`explore_slo` supports.
SEARCH_MODES = ("grid", "bisect")


def explore_slo(
    scenario: ScenarioSpec,
    platforms,
    rates,
    *,
    slo_s: float,
    percentile_q: float = 95.0,
    max_drop_fraction: float = 0.0,
    kind: str = "poisson",
    seed: int = 0,
    session: Session | None = None,
    jobs: int = 1,
    store=None,
    resume: bool = False,
    tag: str | None = None,
    mode: str = "grid",
    tolerance_hz: float = 1.0,
) -> SloReport:
    """Sweep arrival rate x platform and find the max sustainable rates.

    Every (platform, rate) point serves ``scenario`` open-loop at that
    per-stream rate and is judged against ``slo_s`` at the ``percentile_q``
    tail (a point whose drop fraction exceeds ``max_drop_fraction`` fails
    regardless of latency — shedding everything is not "meeting" an SLO).
    Points run through :func:`repro.sweep.run_sweep`, so ``jobs``,
    ``store``, and ``resume`` behave exactly as in any other sweep.

    ``mode="grid"`` (default) evaluates every swept rate.
    ``mode="bisect"`` treats ``rates`` as a bracket — per platform it
    evaluates ``min(rates)`` and ``max(rates)``, then bisects on arrival
    rate until the bracket is narrower than ``tolerance_hz``, homing in
    on the max sustainable rate with O(log(span/tolerance)) serving runs
    instead of a fixed grid. Probes build the same requests grid mode
    would, so stored grid results resume a bisect search and vice versa.
    """
    # Range patterns (``sma:2..4``) expand like any sweep axis, and the
    # axes are de-duplicated up front: the grid elides duplicate requests,
    # so the (platform, rate) cell list must stay aligned with grid order.
    platforms = tuple(
        dict.fromkeys(
            expanded
            for platform in platforms
            for expanded in expand_platform_spec(platform)
        )
    )
    rates = tuple(dict.fromkeys(rates))
    if not platforms:
        raise ConfigError("SLO exploration needs at least one platform")
    if not rates:
        raise ConfigError("SLO exploration needs at least one arrival rate")
    if slo_s <= 0:
        raise ConfigError(f"SLO must be > 0 seconds, got {slo_s}")
    if mode not in SEARCH_MODES:
        raise ConfigError(
            f"unknown SLO search mode {mode!r}; one of {SEARCH_MODES}"
        )
    run_kwargs = dict(
        slo_s=slo_s,
        percentile_q=percentile_q,
        max_drop_fraction=max_drop_fraction,
        kind=kind,
        seed=seed,
        session=session,
        jobs=jobs,
        store=store,
        resume=resume,
        tag=tag,
    )

    if mode == "grid":
        cells = [
            (platform, rate) for platform in platforms for rate in rates
        ]
        points = _run_cells(scenario, cells, **run_kwargs)
    else:
        if tolerance_hz <= 0:
            raise ConfigError(
                f"bisect tolerance must be > 0 Hz, got {tolerance_hz}"
            )
        low, high = min(rates), max(rates)
        if low >= high:
            raise ConfigError(
                f"bisect needs a rate bracket (low < high), got"
                f" [{low:g}, {high:g}]"
            )
        points = []
        memo: dict[tuple[str, float], SloPoint] = {}

        def probe(platform: str, rate: float) -> SloPoint:
            key = (platform, rate)
            if key not in memo:
                (point,) = _run_cells(scenario, [key], **run_kwargs)
                memo[key] = point
                points.append(point)
            return memo[key]

        for platform in platforms:
            # The bracket invariant: ``lo`` meets the SLO, ``hi`` fails.
            if not probe(platform, low).meets_slo:
                continue  # even the bracket floor fails: nothing sustainable
            if probe(platform, high).meets_slo:
                continue  # the whole bracket is sustainable: the max is hi
            lo, hi = low, high
            while hi - lo > tolerance_hz:
                mid = (lo + hi) / 2.0
                if probe(platform, mid).meets_slo:
                    lo = mid
                else:
                    hi = mid
        points = tuple(points)
    return SloReport(
        scenario=scenario.name,
        slo_s=slo_s,
        percentile_q=percentile_q,
        max_drop_fraction=max_drop_fraction,
        points=points,
        mode=mode,
    )


__all__ = [
    "SEARCH_MODES",
    "SloPoint",
    "SloReport",
    "apply_trace",
    "explore_slo",
    "scenario_at_rate",
    "trace_scenario",
]
