"""Open-loop arrival traces: seeded, deterministic frame-release schedules.

Closed-loop scenarios release frame ``k`` of a stream at ``k * period_s``
— the client waits for a fixed cadence. Production serving is *open
loop*: requests arrive on their own clock, whether or not the machine is
keeping up. An :class:`ArrivalSpec` declares such a process per stream:

* ``fixed`` — a deterministic cadence (``k * period``). The closed-loop
  periodic release is exactly this trace, which is what keeps the old
  behavior the degenerate case of the new machinery;
* ``poisson`` — memoryless arrivals at ``rate_hz`` (exponential
  inter-arrival gaps), the canonical serving model;
* ``mmpp`` — a two-state Markov-modulated Poisson process that dwells in
  a ``base`` state and bursts to ``burst_rate_hz``, modelling flash
  crowds;
* ``replay`` — explicit arrival times, usually loaded from an
  :class:`ArrivalTrace` JSON file written by an earlier run.

Everything is seeded and salted by stream name through a stable hash, so
the same spec produces bit-identical arrivals in every process — a trace
serialized to JSON and replayed reproduces the original schedule exactly.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, replace
from pathlib import Path

from repro.common.seeding import derive_seed
from repro.errors import ConfigError

#: The arrival-process kinds a stream may declare.
ARRIVAL_KINDS = ("fixed", "poisson", "mmpp", "replay", "closed_loop")


def stream_seed(seed: int, salt: str) -> int:
    """A stable per-stream RNG seed (``hash()`` is process-randomized).

    Historical name for :func:`repro.common.seeding.derive_seed` with a
    single salt — the scheme and the registry of salt paths live there.
    """
    return derive_seed(seed, salt)


@dataclass(frozen=True)
class ArrivalSpec:
    """One stream's open-loop arrival process.

    ``rate_hz`` is the offered load (mean arrivals per second); ``fixed``
    may instead carry an exact ``period_s`` (the two are exclusive — a
    period expresses the closed-loop cadence bit-for-bit, without a
    ``1 / rate`` rounding). ``mmpp`` bursts to ``burst_rate_hz``
    (default ``5 x rate_hz``), spending ``burst_fraction`` of its
    arrivals in the burst state with mean burst length ``dwell``
    arrivals. ``replay`` ignores the generator fields and releases at
    ``times_s`` verbatim.

    ``closed_loop`` is the one *schedule-dependent* kind: frame ``k+1``
    is released when frame ``k`` completes plus ``think_s`` of client
    think time — the client that waits for its answer before asking
    again. It has no pre-computable trace (asking for one raises), so
    release times come from the timeline engine at simulation time.
    """

    kind: str = "poisson"
    rate_hz: float | None = None
    period_s: float | None = None
    seed: int = 0
    burst_rate_hz: float | None = None
    burst_fraction: float = 0.1
    dwell: int = 8
    times_s: tuple[float, ...] | None = None
    think_s: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ConfigError(
                f"unknown arrival kind {self.kind!r}; one of {ARRIVAL_KINDS}"
            )
        if self.think_s is not None and self.kind != "closed_loop":
            raise ConfigError(
                f"{self.kind!r} arrivals do not take think_s (closed_loop"
                " only)"
            )
        if self.times_s is not None:
            object.__setattr__(self, "times_s", tuple(self.times_s))
        if self.kind == "closed_loop":
            for name, value in (
                ("rate_hz", self.rate_hz),
                ("period_s", self.period_s),
                ("times_s", self.times_s),
            ):
                if value is not None:
                    raise ConfigError(
                        f"closed_loop arrivals do not take {name} (the"
                        " schedule itself paces releases)"
                    )
            if self.think_s is None:
                object.__setattr__(self, "think_s", 0.0)
            if self.think_s < 0:
                raise ConfigError(
                    f"closed_loop think_s must be >= 0, got {self.think_s}"
                )
            return
        if self.kind == "replay":
            if self.times_s is None:
                raise ConfigError("replay arrivals need times_s")
            if any(time < 0 for time in self.times_s):
                raise ConfigError("replay arrival times must be >= 0")
            if any(
                later < earlier
                for earlier, later in zip(self.times_s, self.times_s[1:])
            ):
                raise ConfigError("replay arrival times must be sorted")
            return
        if self.times_s is not None:
            raise ConfigError(
                f"{self.kind!r} arrivals do not take times_s (use replay)"
            )
        if self.kind == "fixed":
            if (self.rate_hz is None) == (self.period_s is None):
                raise ConfigError(
                    "fixed arrivals need exactly one of rate_hz or period_s"
                )
            if self.period_s is not None and self.period_s < 0:
                raise ConfigError("fixed arrival period must be >= 0")
        elif self.period_s is not None:
            raise ConfigError(
                f"{self.kind!r} arrivals take rate_hz, not period_s"
            )
        if self.rate_hz is not None and self.rate_hz <= 0:
            raise ConfigError(
                f"arrival rate must be > 0, got {self.rate_hz}"
            )
        if self.kind in ("poisson", "mmpp") and self.rate_hz is None:
            raise ConfigError(f"{self.kind!r} arrivals need rate_hz")
        if self.kind == "mmpp":
            if self.burst_rate_hz is not None and self.burst_rate_hz <= 0:
                raise ConfigError("mmpp burst rate must be > 0")
            if not 0.0 < self.burst_fraction < 1.0:
                raise ConfigError("mmpp burst_fraction must be in (0, 1)")
            if self.dwell < 1:
                raise ConfigError("mmpp dwell must be >= 1 arrival")

    @property
    def period(self) -> float:
        """The fixed cadence (``fixed`` kind only)."""
        if self.period_s is not None:
            return self.period_s
        return 1.0 / self.rate_hz

    def at_rate(self, rate_hz: float) -> "ArrivalSpec":
        """This process re-offered at a different rate (burst scales too)."""
        if self.kind in ("replay", "closed_loop"):
            raise ConfigError(f"{self.kind} arrivals cannot be re-rated")
        burst = self.burst_rate_hz
        if burst is not None and self.rate_hz:
            burst = burst * (rate_hz / self.rate_hz)
        return replace(self, rate_hz=rate_hz, period_s=None, burst_rate_hz=burst)

    def to_dict(self) -> dict:
        payload: dict = {"kind": self.kind, "seed": self.seed}
        if self.rate_hz is not None:
            payload["rate_hz"] = self.rate_hz
        if self.period_s is not None:
            payload["period_s"] = self.period_s
        if self.kind == "mmpp":
            payload["burst_rate_hz"] = self.burst_rate_hz
            payload["burst_fraction"] = self.burst_fraction
            payload["dwell"] = self.dwell
        if self.times_s is not None:
            payload["times_s"] = list(self.times_s)
        if self.kind == "closed_loop":
            payload["think_s"] = self.think_s
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "ArrivalSpec":
        if not isinstance(data, dict):
            raise ConfigError(f"arrival spec must be an object, got {data!r}")
        if "kind" not in data:
            raise ConfigError(f"arrival spec is missing 'kind': {data!r}")
        times = data.get("times_s")
        return cls(
            kind=data["kind"],
            rate_hz=data.get("rate_hz"),
            period_s=data.get("period_s"),
            seed=data.get("seed", 0),
            burst_rate_hz=data.get("burst_rate_hz"),
            burst_fraction=data.get("burst_fraction", 0.1),
            dwell=data.get("dwell", 8),
            times_s=tuple(times) if times is not None else None,
            think_s=data.get("think_s"),
        )


def generate_arrivals(
    spec: ArrivalSpec, count: int, salt: str = ""
) -> tuple[float, ...]:
    """The first ``count`` arrival times of ``spec`` (seeded by ``salt``).

    ``replay`` returns its recorded times, truncated to ``count`` — a
    shorter trace simply yields fewer frames. Generated kinds always
    yield exactly ``count`` sorted, non-negative times.
    """
    if count < 0:
        raise ConfigError(f"arrival count must be >= 0, got {count}")
    return tuple(iter_arrivals(spec, count, salt))


def iter_arrivals(spec: ArrivalSpec, count: int | None = None, salt: str = ""):
    """Stream the arrival times of ``spec`` lazily, one at a time.

    Yields exactly the floats :func:`generate_arrivals` would return —
    same RNG sequence, same arithmetic, same order — without ever
    materializing the trace, which is what lets the streaming serving
    driver consume million-frame Poisson processes in O(1) memory.
    ``count=None`` streams forever for the generated kinds (the caller
    bounds consumption); ``replay`` is inherently finite and ``fixed``
    honors ``count=None`` as unbounded.
    """
    if count is not None and count < 0:
        raise ConfigError(f"arrival count must be >= 0, got {count}")
    if spec.kind == "closed_loop":
        raise ConfigError(
            "closed_loop arrivals have no static schedule: releases are"
            " paced by frame completions at simulation time"
        )
    if spec.kind == "replay":
        times = spec.times_s if count is None else spec.times_s[:count]
        yield from times
        return
    if count == 0:
        return
    if spec.kind == "fixed":
        period = spec.period
        frame = 0
        while count is None or frame < count:
            yield frame * period
            frame += 1
        return
    rng = random.Random(stream_seed(spec.seed, salt))
    if spec.kind == "poisson":
        now = 0.0
        emitted = 0
        while count is None or emitted < count:
            now += rng.expovariate(spec.rate_hz)
            yield now
            emitted += 1
        return
    # mmpp: two-state modulation; state transitions are drawn per arrival
    # so the trace stays deterministic for a given (seed, salt, count).
    burst_rate = (
        spec.burst_rate_hz
        if spec.burst_rate_hz is not None
        else 5.0 * spec.rate_hz
    )
    leave_burst = 1.0 / spec.dwell
    enter_burst = leave_burst * spec.burst_fraction / (1.0 - spec.burst_fraction)
    now = 0.0
    bursting = False
    emitted = 0
    while count is None or emitted < count:
        now += rng.expovariate(burst_rate if bursting else spec.rate_hz)
        yield now
        emitted += 1
        if bursting:
            bursting = rng.random() >= leave_burst
        else:
            bursting = rng.random() < enter_burst


@dataclass(frozen=True)
class ArrivalTrace:
    """A materialized arrival schedule: per-stream release times.

    This is the lossless wire format between runs: a scenario's generated
    arrivals are captured with :func:`trace_scenario`, written with
    :meth:`save`, and a later process replays them with
    :func:`apply_trace` to reproduce the original schedule bit-for-bit
    (JSON floats round-trip exactly).
    """

    streams: dict[str, tuple[float, ...]]
    scenario: str | None = None
    frames: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "streams",
            {name: tuple(times) for name, times in self.streams.items()},
        )

    def to_dict(self) -> dict:
        return {
            "kind": "arrival_trace",
            "scenario": self.scenario,
            "frames": self.frames,
            "streams": {
                name: list(times) for name, times in self.streams.items()
            },
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "ArrivalTrace":
        if not isinstance(data, dict) or not isinstance(
            data.get("streams"), dict
        ):
            raise ConfigError(
                "not an arrival trace: expected an object with a 'streams'"
                f" mapping, got {data!r}"
            )
        streams: dict[str, tuple[float, ...]] = {}
        for name, times in data["streams"].items():
            if not isinstance(times, (list, tuple)) or not all(
                isinstance(time, (int, float)) and not isinstance(time, bool)
                for time in times
            ):
                raise ConfigError(
                    f"arrival trace stream {name!r}: times must be a list"
                    f" of numbers, got {times!r}"
                )
            streams[name] = tuple(times)
        return cls(
            streams=streams,
            scenario=data.get("scenario"),
            frames=data.get("frames"),
        )

    @classmethod
    def from_json(cls, text: str) -> "ArrivalTrace":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigError(f"invalid trace JSON: {error}") from None
        return cls.from_dict(data)

    def save(self, path: "str | Path") -> None:
        Path(path).write_text(self.to_json(indent=2), encoding="utf-8")

    @classmethod
    def load(cls, path: "str | Path") -> "ArrivalTrace":
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as error:
            raise ConfigError(
                f"cannot read arrival trace {str(path)!r}: {error}"
            ) from None
        return cls.from_json(text)


__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalSpec",
    "ArrivalTrace",
    "generate_arrivals",
    "iter_arrivals",
    "stream_seed",
]
