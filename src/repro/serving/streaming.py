"""Bounded-memory streaming serving: million-frame traces, O(1) state.

:func:`serve_streaming` drives the vectorized timeline core
(:class:`~repro.schedule.vectorized.VectorCore`) frame-by-frame instead
of materializing a scenario's full task set: each stream's arrivals come
from the lazy :func:`~repro.serving.traces.iter_arrivals` iterator via a
:class:`~repro.schedule.streams.FrameSource`, tasks are injected just in
time, and every retired frame folds into O(1) per-stream accumulators
(counts, running sum/max, P² latency sketches) before its engine state
is pruned. Peak memory is the *in-flight* frame window — queue depth,
not trace length — so a 1M-frame Poisson trace needs the same few
kilobytes of live state as a 16-frame one (admission control, or offered
load below capacity, is what keeps that window bounded; an uncontrolled
overload grows backlog in any engine).

Injection timing is chosen so the engine observes *exactly* the event
sequence of a materialized run:

* a stream's next frame is injected the moment its static release passes
  (so QoS review sees it queued, blocked or not — scalar semantics), or
* the moment the previous frame's last task resolves (so the dependency
  satisfaction lands at the same instant the materialized run's would),

whichever comes first. Un-injected frames satisfy neither condition and
would contribute no event to a materialized run either. Consequently,
with ``keep_records=True`` the resulting :class:`ServingReport` equals
the materialized ``run_serving`` report *exactly*; without it, per-frame
records are replaced by P² sketch estimates for the percentile fields
(documented tolerance: estimates, not exact order statistics — and
``mean_latency_s`` may differ in final ulps because summation follows
retirement order rather than frame order).

Closed-loop streams are rejected: their releases depend on completions,
which makes the whole trace one dependency chain with no static
schedule to stream against.
"""

from __future__ import annotations

from repro.api.results import ServingReport, ServingStreamReport
from repro.common.stats import QuantileSketch, percentile
from repro.errors import ConfigError
from repro.schedule.policies import make_policy
from repro.schedule.streams import (
    FrameRecord,
    FrameRun,
    ScenarioSpec,
    frame_sources,
)
from repro.schedule.timeline import Timeline
from repro.schedule.vectorized import VectorCore
from repro.serving.qos import make_qos


class _FrameState:
    """One in-flight frame's resolution bookkeeping."""

    __slots__ = (
        "run", "unresolved", "max_end", "drop_uid", "drop_reason", "aborted"
    )

    def __init__(self, run: FrameRun) -> None:
        self.run = run
        self.unresolved = len(run.uids)
        self.max_end: float | None = None
        self.drop_uid: int | None = None
        self.drop_reason: str | None = None
        self.aborted = False


class _StreamState:
    """One stream's accumulators and frame pipeline."""

    def __init__(self, source, keep_records: bool) -> None:
        self.source = source
        self.lookahead = source.next_frame()
        self.offered = 0
        self.completed = 0
        self.dropped = 0
        self.missed = 0
        self.met = 0
        self.preempted = 0
        self.latency_sum = 0.0
        self.latency_max = 0.0
        self.sketch = QuantileSketch()
        self.records: dict[int, FrameRecord] | None = (
            {} if keep_records else None
        )


def serve_streaming(
    scenario: ScenarioSpec,
    templates: dict,
    interference=None,
    *,
    platform: str,
    tag: str | None = None,
    keep_records: bool = False,
    max_events: int | None = None,
    stats_out: dict | None = None,
    tracer=None,
) -> ServingReport:
    """Serve ``scenario`` through the streaming engine (see module doc).

    ``templates`` maps stream names to platform-lowered task chains, as
    for :func:`~repro.schedule.streams.instantiate_frames`. When
    ``stats_out`` is given, engine counters (``peak_live`` tasks,
    ``events``) are written into it — the memory-bound benchmarks gate
    on ``peak_live`` staying at queue-depth scale. ``tracer`` — an
    optional :class:`~repro.obs.trace.Tracer` — records the engine's
    structured events without changing the report by a byte (the trace
    grows with trace length, so leave it off for million-frame runs).
    """
    sources = frame_sources(scenario, templates)
    if max_events is None:
        total_frames = scenario.frames * max(1, len(scenario.streams))
        max_events = max(10_000_000, 16 * total_frames)

    streams = [_StreamState(source, keep_records) for source in sources]
    by_uid_frame: dict[int, tuple[_StreamState, _FrameState]] = {}
    await_inject: dict[int, _StreamState] = {}
    global_sketch = QuantileSketch()

    core = VectorCore(
        make_policy(scenario.policy),
        qos=make_qos(scenario.qos),
        interference=interference,
        max_events=max_events,
        collect=False,
        tracer=tracer,
    )

    def inject_frame(state: _StreamState) -> None:
        run, tasks = state.lookahead
        frame_state = _FrameState(run)
        for uid in run.uids:
            by_uid_frame[uid] = (state, frame_state)
        # The frame after this one is due when this one's last task
        # resolves (or when its own release passes — the feeder's job).
        await_inject[run.uids[-1]] = state
        state.lookahead = state.source.next_frame()
        core.inject(tasks)

    def retire(state: _StreamState, frame_state: _FrameState) -> None:
        run = frame_state.run
        state.offered += 1
        if frame_state.drop_uid is not None:
            state.dropped += 1
            if frame_state.aborted:
                state.preempted += 1
            record = FrameRecord(
                stream=run.stream,
                frame=run.frame,
                release_s=run.release_s,
                deadline_s=run.deadline_s,
                completion_s=None,
                latency_s=None,
                missed=False,
                dropped=True,
                drop_reason=frame_state.drop_reason,
            )
        else:
            completion = frame_state.max_end
            latency = completion - run.release_s
            missed = (
                run.deadline_s is not None and latency > run.deadline_s
            )
            state.completed += 1
            if missed:
                state.missed += 1
            else:
                state.met += 1
            state.latency_sum += latency
            if latency > state.latency_max:
                state.latency_max = latency
            state.sketch.add(latency)
            global_sketch.add(latency)
            record = FrameRecord(
                stream=run.stream,
                frame=run.frame,
                release_s=run.release_s,
                deadline_s=run.deadline_s,
                completion_s=completion,
                latency_s=latency,
                missed=missed,
                dropped=False,
            )
        if state.records is not None:
            state.records[run.frame] = record
        for uid in run.uids:
            del by_uid_frame[uid]
        await_inject.pop(run.uids[-1], None)
        core.prune(run.uids)

    def on_resolve(task, end_s, drop_record) -> None:
        state, frame_state = by_uid_frame[task.uid]
        if end_s is not None:
            if frame_state.max_end is None or end_s > frame_state.max_end:
                frame_state.max_end = end_s
        elif (
            frame_state.drop_uid is None
            or drop_record.uid < frame_state.drop_uid
        ):
            frame_state.drop_uid = drop_record.uid
            frame_state.drop_reason = drop_record.reason
            if getattr(drop_record, "action", None) == "abort":
                frame_state.aborted = True
        frame_state.unresolved -= 1
        # Pull the stream's next frame in at the same instant the
        # materialized run's dependency satisfaction would fire.
        waiter = await_inject.get(task.uid)
        if waiter is not None and waiter.lookahead is not None:
            inject_frame(waiter)
        if frame_state.unresolved == 0:
            retire(state, frame_state)

    core.on_resolve = on_resolve

    def feeder(now: float) -> None:
        # Frames whose static release has passed join the engine even
        # while dependency-blocked, exactly like a materialized run's
        # queued-but-blocked heads.
        for state in streams:
            while (
                state.lookahead is not None
                and state.lookahead[0].release_s <= now
            ):
                inject_frame(state)

    for state in streams:
        if state.lookahead is not None:
            inject_frame(state)
    core.run_loop(feeder=feeder)
    if stats_out is not None:
        stats_out["peak_live"] = core.peak_live
        stats_out["events"] = core.events

    shell = Timeline(
        segments=(),
        makespan_s=core.now,
        busy_s=core.busy,
        load_integral_s=core.load_integral,
        mode_switches=core.mode_switches,
        switch_overhead_s=core.switch_overhead,
        drops=(),
    )
    makespan = shell.makespan_s

    reports = []
    for spec, state in zip(scenario.streams, streams):
        if state.records is not None:
            # Exact mode: rebuild the statistics from the records in
            # frame order, matching ServingReport.from_timeline term by
            # term (bit-identical to the materialized report).
            frames = tuple(
                state.records[key] for key in sorted(state.records)
            )
            done = [frame for frame in frames if not frame.dropped]
            latencies = [frame.latency_s for frame in done]
            met = sum(1 for frame in done if not frame.missed)
            reports.append(
                ServingStreamReport(
                    name=spec.name,
                    model=spec.model,
                    priority=spec.priority,
                    offered=len(frames),
                    completed=len(done),
                    dropped=len(frames) - len(done),
                    missed=sum(1 for frame in done if frame.missed),
                    skipped=state.source.skipped,
                    mean_latency_s=(
                        sum(latencies) / len(latencies) if latencies else 0.0
                    ),
                    max_latency_s=max(latencies) if latencies else 0.0,
                    p50_s=percentile(latencies, 50),
                    p95_s=percentile(latencies, 95),
                    p99_s=percentile(latencies, 99),
                    goodput_fps=met / makespan if makespan > 0 else 0.0,
                    frames=frames,
                    preempted=state.preempted,
                )
            )
        else:
            sketch = state.sketch
            reports.append(
                ServingStreamReport(
                    name=spec.name,
                    model=spec.model,
                    priority=spec.priority,
                    offered=state.offered,
                    completed=state.completed,
                    dropped=state.dropped,
                    missed=state.missed,
                    skipped=state.source.skipped,
                    mean_latency_s=sketch.mean,
                    max_latency_s=sketch.max_value,
                    p50_s=sketch.quantile(50),
                    p95_s=sketch.quantile(95),
                    p99_s=sketch.quantile(99),
                    goodput_fps=state.met / makespan if makespan > 0 else 0.0,
                    frames=(),
                    sketches=sketch.to_dict(),
                    preempted=state.preempted,
                )
            )

    return ServingReport(
        scenario=scenario.name,
        platform=platform,
        policy=scenario.policy,
        frames=scenario.frames,
        makespan_s=makespan,
        streams=tuple(reports),
        occupancy=shell.occupancy(),
        mode_switches=core.mode_switches,
        switch_overhead_s=core.switch_overhead,
        qos=scenario.qos.to_dict() if scenario.qos is not None else None,
        tag=tag,
        sketches=None if keep_records else global_sketch.to_dict(),
    )


__all__ = ["serve_streaming"]
