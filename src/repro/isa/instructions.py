"""Instruction and memory-access descriptors for the SM pipeline model.

The ISA is deliberately small: enough to express the three GEMM kernel
flavours the paper compares (SIMD FFMA loops, TensorCore HMMA loops, and the
SMA's asynchronous LSMA instruction) plus the loads/stores, address
arithmetic and synchronization around them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Opcode(enum.Enum):
    """Supported operations, named after their SASS analogues."""

    FFMA = "ffma"      # FP32 fused multiply-add (SIMD mode MAC)
    HFMA2 = "hfma2"    # paired FP16 multiply-add on CUDA cores
    FADD = "fadd"
    IMAD = "imad"      # integer multiply-add (addressing)
    MOV = "mov"
    LDS = "lds"        # load from shared memory
    STS = "sts"        # store to shared memory
    LDG = "ldg"        # load from global memory
    STG = "stg"        # store to global memory
    LDC = "ldc"        # load from constant memory
    HMMA = "hmma"      # TensorCore matrix-multiply-accumulate step
    LSMA = "lsma"      # SMA: asynchronous Load-Store-Multiply-Accumulate
    BAR = "bar"        # thread-block-wide barrier
    CGSYNC = "cgsync"  # cooperative-group (named subset) barrier
    SMAWAIT = "smawait"  # wait for the systolic controller to drain
    EXIT = "exit"
    NOP = "nop"


class ExecUnit(enum.Enum):
    """The structural unit an instruction occupies at issue."""

    ALU = "alu"          # integer / address pipeline
    FMA = "fma"          # FP32/FP16 SIMD pipelines
    LSU = "lsu"          # load-store unit (shared/global/const)
    TENSOR = "tensor"    # TensorCore
    SMA = "sma"          # systolic controller port
    SYNC = "sync"        # barriers


_OPCODE_UNIT = {
    Opcode.FFMA: ExecUnit.FMA,
    Opcode.HFMA2: ExecUnit.FMA,
    Opcode.FADD: ExecUnit.FMA,
    Opcode.IMAD: ExecUnit.ALU,
    Opcode.MOV: ExecUnit.ALU,
    Opcode.LDS: ExecUnit.LSU,
    Opcode.STS: ExecUnit.LSU,
    Opcode.LDG: ExecUnit.LSU,
    Opcode.STG: ExecUnit.LSU,
    Opcode.LDC: ExecUnit.LSU,
    Opcode.HMMA: ExecUnit.TENSOR,
    Opcode.LSMA: ExecUnit.SMA,
    Opcode.BAR: ExecUnit.SYNC,
    Opcode.CGSYNC: ExecUnit.SYNC,
    Opcode.SMAWAIT: ExecUnit.SYNC,
    Opcode.EXIT: ExecUnit.SYNC,
    Opcode.NOP: ExecUnit.ALU,
}

# Result latency (cycles until the destination registers are readable).
_OPCODE_LATENCY = {
    Opcode.FFMA: 4,
    Opcode.HFMA2: 4,
    Opcode.FADD: 4,
    Opcode.IMAD: 4,
    Opcode.MOV: 2,
    Opcode.LDS: 19,
    Opcode.STS: 1,
    Opcode.LDG: 400,
    Opcode.STG: 1,
    Opcode.LDC: 8,
    Opcode.HMMA: 8,
    Opcode.LSMA: 1,     # asynchronous: the controller runs independently
    Opcode.BAR: 1,
    Opcode.CGSYNC: 1,
    Opcode.SMAWAIT: 1,
    Opcode.EXIT: 1,
    Opcode.NOP: 1,
}


class MemSpace(enum.Enum):
    SHARED = "shared"
    GLOBAL = "global"
    CONST = "const"


@dataclass(frozen=True)
class MemAccess:
    """One warp-wide memory access.

    ``lane_addresses`` gives the byte address touched by each of the 32
    lanes; the shared-memory bank model and the global coalescer derive
    conflict degree / transaction counts from it. ``width_bytes`` is the
    access width per lane.
    """

    space: MemSpace
    lane_addresses: tuple[int, ...]
    width_bytes: int = 4
    is_store: bool = False

    def __post_init__(self) -> None:
        if not self.lane_addresses:
            raise ValueError("a memory access needs at least one lane address")
        if self.width_bytes not in (1, 2, 4, 8, 16):
            raise ValueError(f"unsupported access width {self.width_bytes}")

    @property
    def active_lanes(self) -> int:
        return len(self.lane_addresses)

    @property
    def bytes_moved(self) -> int:
        return self.active_lanes * self.width_bytes


def coalesced_access(
    space: MemSpace,
    base: int,
    width_bytes: int = 4,
    lanes: int = 32,
    is_store: bool = False,
) -> MemAccess:
    """Unit-stride access: lane i touches ``base + i * width_bytes``."""
    addresses = tuple(base + lane * width_bytes for lane in range(lanes))
    return MemAccess(space, addresses, width_bytes, is_store)


def strided_access(
    space: MemSpace,
    base: int,
    stride_bytes: int,
    width_bytes: int = 4,
    lanes: int = 32,
    is_store: bool = False,
) -> MemAccess:
    """Constant-stride access: lane i touches ``base + i * stride_bytes``."""
    addresses = tuple(base + lane * stride_bytes for lane in range(lanes))
    return MemAccess(space, addresses, width_bytes, is_store)


def broadcast_access(
    space: MemSpace,
    base: int,
    width_bytes: int = 4,
    lanes: int = 32,
) -> MemAccess:
    """All lanes read the same word (hardware broadcasts, no conflict)."""
    addresses = tuple(base for _ in range(lanes))
    return MemAccess(space, addresses, width_bytes, False)


@dataclass(frozen=True)
class Instruction:
    """One warp-level instruction.

    Registers are abstract integer ids scoped to the warp; the scoreboard
    uses them for dependence tracking only, so no allocator is needed.
    """

    opcode: Opcode
    dst: tuple[int, ...] = ()
    srcs: tuple[int, ...] = ()
    mem: MemAccess | None = None
    group: int | None = None      # cooperative-group id for CGSYNC
    tag: str = ""                 # free-form label for stats/debugging
    payload: tuple[int, ...] = field(default=())  # LSMA: (k_extent, unit_id)

    def __post_init__(self) -> None:
        needs_mem = self.opcode in (
            Opcode.LDS, Opcode.STS, Opcode.LDG, Opcode.STG, Opcode.LDC,
        )
        if needs_mem and self.mem is None:
            raise ValueError(f"{self.opcode.value} requires a memory descriptor")
        if not needs_mem and self.mem is not None:
            raise ValueError(f"{self.opcode.value} must not carry a memory descriptor")
        if self.opcode is Opcode.CGSYNC and self.group is None:
            raise ValueError("cgsync requires a group id")

    @property
    def unit(self) -> ExecUnit:
        return _OPCODE_UNIT[self.opcode]

    @property
    def latency(self) -> int:
        return _OPCODE_LATENCY[self.opcode]

    @property
    def is_barrier(self) -> bool:
        return self.opcode in (Opcode.BAR, Opcode.CGSYNC, Opcode.SMAWAIT)

    @property
    def register_operand_count(self) -> int:
        """Number of warp-wide register operands read at issue."""
        return len(self.srcs)
