"""A compact SASS-like instruction set for the cycle-level SM pipeline.

The GEMM mapping layers (`repro.gemm.traces`, `repro.sma.mapping`) emit warp
programs in this ISA; `repro.gpu.sm` executes them with structural timing.
"""

from repro.isa.instructions import (
    ExecUnit,
    Instruction,
    MemAccess,
    MemSpace,
    Opcode,
    broadcast_access,
    coalesced_access,
    strided_access,
)
from repro.isa.program import ProgramBuilder, WarpProgram

__all__ = [
    "ExecUnit",
    "Instruction",
    "MemAccess",
    "MemSpace",
    "Opcode",
    "ProgramBuilder",
    "WarpProgram",
    "broadcast_access",
    "coalesced_access",
    "strided_access",
]
