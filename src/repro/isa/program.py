"""Warp programs and a fluent builder used by the kernel trace generators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.isa.instructions import Instruction, MemAccess, Opcode


@dataclass
class WarpProgram:
    """The full instruction trace executed by one warp.

    Traces are already unrolled: the generators emit a prologue, a number of
    steady-state loop bodies, and an epilogue. The SM pipeline just walks the
    list.
    """

    name: str
    instructions: list[Instruction] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def extend(self, instructions: Iterable[Instruction]) -> None:
        self.instructions.extend(instructions)

    def count(self, opcode: Opcode) -> int:
        """Number of instructions with the given opcode."""
        return sum(1 for inst in self.instructions if inst.opcode is opcode)


class ProgramBuilder:
    """Fluent helper to assemble :class:`WarpProgram` objects.

    Register ids are plain ints chosen by the caller; ``fresh()`` hands out
    ids above 1000 for temporaries so they never collide with the caller's
    numbering scheme.
    """

    def __init__(self, name: str) -> None:
        self._program = WarpProgram(name)
        self._next_temp = 1000

    def fresh(self) -> int:
        """Allocate a temporary register id."""
        self._next_temp += 1
        return self._next_temp

    def emit(self, instruction: Instruction) -> "ProgramBuilder":
        self._program.instructions.append(instruction)
        return self

    def ffma(self, dst: int, a: int, b: int, c: int, tag: str = "") -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.FFMA, (dst,), (a, b, c), tag=tag))

    def hfma2(self, dst: int, a: int, b: int, c: int, tag: str = "") -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.HFMA2, (dst,), (a, b, c), tag=tag))

    def imad(self, dst: int, a: int, b: int, c: int, tag: str = "") -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.IMAD, (dst,), (a, b, c), tag=tag))

    def mov(self, dst: int, src: int, tag: str = "") -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.MOV, (dst,), (src,), tag=tag))

    def lds(self, dst: int, access: MemAccess, addr_reg: int, tag: str = "") -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.LDS, (dst,), (addr_reg,), mem=access, tag=tag))

    def sts(self, access: MemAccess, data_reg: int, addr_reg: int, tag: str = "") -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.STS, (), (data_reg, addr_reg), mem=access, tag=tag))

    def ldg(self, dst: int, access: MemAccess, addr_reg: int, tag: str = "") -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.LDG, (dst,), (addr_reg,), mem=access, tag=tag))

    def stg(self, access: MemAccess, data_reg: int, addr_reg: int, tag: str = "") -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.STG, (), (data_reg, addr_reg), mem=access, tag=tag))

    def hmma(self, dst: int, a: int, b: int, c: int, tag: str = "") -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.HMMA, (dst,), (a, b, c), tag=tag))

    def lsma(
        self,
        a_addr_reg: int,
        c_addr_reg: int,
        b_value_reg: int,
        height_reg: int,
        k_extent: int,
        unit_id: int = 0,
        tag: str = "",
    ) -> "ProgramBuilder":
        """The paper's LSMA instruction (Eq. 1): C[out] <- A[in] x B + C[in].

        Four register operands: addresses of A and C, one element value of B,
        and the height of A. Executes asynchronously on the systolic
        controller; ``k_extent`` tells the timing model how many rows stream
        through the array.
        """
        return self.emit(
            Instruction(
                Opcode.LSMA,
                (),
                (a_addr_reg, c_addr_reg, b_value_reg, height_reg),
                payload=(k_extent, unit_id),
                tag=tag,
            )
        )

    def bar(self, tag: str = "") -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.BAR, tag=tag))

    def cgsync(self, group: int, tag: str = "") -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.CGSYNC, group=group, tag=tag))

    def smawait(self, tag: str = "") -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.SMAWAIT, tag=tag))

    def exit(self) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.EXIT))

    def build(self) -> WarpProgram:
        """Finalize and return the program (builder stays reusable)."""
        return self._program
