"""Analytic TensorCore GEMM timing (used for the Fig 1 efficiency sweep).

The cycle-level pipeline (``repro.gpu.sm`` fed by ``repro.gemm.traces``)
is the reference timing model; this module provides a closed-form estimate
of the same structural limits so that the Fig 1 sweep (matrices up to
2^14) stays cheap. The estimate has three multiplicative terms:

* **register-bandwidth bound** — each HMMA reads 8 / writes 4 warp-wide
  operands; the operand-collector read ports sustain fewer, capping
  throughput (paper SS II-A: "high register bandwidth consumption");
* **synchronization overhead** — the decoupled, fixed-shape (4x4x4)
  execution model costs a barrier per tile iteration;
* **tiling / wave quantization** — partial 128x128 output tiles and
  partial waves over the 80 SMs idle compute at small sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.mathutil import ceil_div
from repro.config import GpuConfig
from repro.errors import SimulationError
from repro.gpu.gpu import DEFAULT_LAUNCH_OVERHEAD_CYCLES
from repro.tensorcore.tensor_core import HMMA_REG_READS, HMMA_REG_WRITES

#: Cycles of barrier/fragment-shuffle overhead per warp-tile K-iteration.
SYNC_OVERHEAD_CYCLES = 24.0
#: Steady-state K-iteration length of a 64x64 warp tile (256 HMMA steps).
WARP_TILE_HMMAS_PER_KSLICE = 16.0


@dataclass(frozen=True)
class TcGemmEstimate:
    """Closed-form TC GEMM timing for one (M, N, K) problem."""

    m: int
    n: int
    k: int
    cycles: float
    efficiency: float
    rf_bound: float
    sync_factor: float
    quantization: float

    @property
    def macs(self) -> int:
        return self.m * self.n * self.k


def _register_bandwidth_bound(
    config: GpuConfig, collector_efficiency: float
) -> float:
    """Fraction of peak TC throughput the RF ports can feed.

    Full speed needs one HMMA issued per cycle per SM (4 TCs x 4-cycle
    occupancy). Each HMMA wants 8 operand reads and 4 writes against
    ``banks * efficiency`` read ports and half as many write ports.
    """
    read_ports = config.register_file_banks * collector_efficiency
    write_ports = read_ports / 2.0
    read_bound = read_ports / HMMA_REG_READS
    write_bound = write_ports / HMMA_REG_WRITES
    return min(1.0, read_bound, write_bound)


def estimate_tc_gemm_efficiency(
    m: int,
    n: int,
    k: int,
    config: GpuConfig | None = None,
    collector_efficiency: float = 0.95,
    tile_m: int = 128,
    tile_n: int = 128,
) -> TcGemmEstimate:
    """Estimate FLOPS efficiency of an (M, N, K) GEMM on the 4-TC SM."""
    if m <= 0 or n <= 0 or k <= 0:
        raise SimulationError("GEMM dims must be positive")
    config = config or GpuConfig()

    rf_bound = _register_bandwidth_bound(config, collector_efficiency)
    # Steady-state overhead beyond the RF bound: fragment loads, issue
    # burstiness and scoreboard bubbles. Calibrated once against the
    # cycle-level pipeline (0.686 measured / 0.95 collector bound).
    rf_bound *= 0.72

    # Sync: one block-wide barrier per K-slice; at tiny K it dominates.
    kslices = max(1.0, k / 16.0)
    productive = WARP_TILE_HMMAS_PER_KSLICE / rf_bound
    sync_factor = productive / (productive + SYNC_OVERHEAD_CYCLES / kslices)

    # Tile and wave quantization.
    tiles_m = ceil_div(m, tile_m)
    tiles_n = ceil_div(n, tile_n)
    tile_util = (m * n) / float(tiles_m * tile_m * tiles_n * tile_n)
    tbs = tiles_m * tiles_n
    waves = ceil_div(tbs, config.num_sms)
    wave_util = tbs / float(waves * config.num_sms)
    quantization = tile_util * wave_util

    peak_macs_per_cycle = config.fp16_units_per_sm * config.num_sms
    ideal_cycles = (m * n * k) / peak_macs_per_cycle
    efficiency = rf_bound * sync_factor * quantization
    cycles = ideal_cycles / max(efficiency, 1e-9)
    cycles += DEFAULT_LAUNCH_OVERHEAD_CYCLES
    # Launch overhead folds back into the reported efficiency.
    efficiency = ideal_cycles / cycles
    return TcGemmEstimate(
        m=m,
        n=n,
        k=k,
        cycles=cycles,
        efficiency=efficiency,
        rf_bound=rf_bound,
        sync_factor=sync_factor,
        quantization=quantization,
    )


def wmma_schedule(
    warp_tile_m: int = 64, warp_tile_n: int = 64, k_slice: int = 16
) -> dict[str, int]:
    """Static schedule facts for one warp tile's K-slice.

    Returns the number of WMMA fragment ops, HMMA steps, and shared-memory
    fragment loads the trace generator must emit per K-slice.
    """
    if warp_tile_m % 16 or warp_tile_n % 16 or k_slice % 16:
        raise SimulationError("warp tile dims must be multiples of 16")
    wmma_rows = warp_tile_m // 16
    wmma_cols = warp_tile_n // 16
    wmmas = wmma_rows * wmma_cols * (k_slice // 16)
    # One 16x16 FP16 fragment = 512 B = 4 warp-wide 128 B shared loads.
    a_fragment_loads = wmma_rows * (k_slice // 16) * 4
    b_fragment_loads = wmma_cols * (k_slice // 16) * 4
    return {
        "wmmas": wmmas,
        "hmma_steps": wmmas * 16,
        "a_fragment_loads": a_fragment_loads,
        "b_fragment_loads": b_fragment_loads,
        "hmma_reg_reads": wmmas * 16 * HMMA_REG_READS,
        "hmma_reg_writes": wmmas * 16 * HMMA_REG_WRITES,
    }
