"""The 4-element dot-product unit at the heart of a TensorCore.

Volta TCs compute GEMM "in the dot-product fashion" (paper SS II-A): each of
the 16 output elements of a 4x4x4 MMA comes from a 4-wide dot product plus
an accumulator add. FP16 multiplies feed an FP32 accumulate, which we model
by rounding the products to FP16 before the FP32 sum.
"""

from __future__ import annotations

import numpy as np


def dot4(
    a: np.ndarray, b: np.ndarray, c: float, fp16_inputs: bool = True
) -> float:
    """One dot-product-unit operation: ``c + sum_i a[i] * b[i]``.

    ``a`` and ``b`` are 4-vectors. With ``fp16_inputs`` the operands are
    first rounded to half precision (the TC datapath), while the adder tree
    and accumulator stay FP32.
    """
    a = np.asarray(a, dtype=np.float32).reshape(4)
    b = np.asarray(b, dtype=np.float32).reshape(4)
    if fp16_inputs:
        a = a.astype(np.float16).astype(np.float32)
        b = b.astype(np.float16).astype(np.float32)
    products = a * b
    return float(np.float32(c) + products.sum(dtype=np.float32))
