"""Functional TensorCore: 4x4x4 MMA steps and 16x16x16 WMMA fragments.

Timing facts exposed here are consumed by the trace generators:

* one HMMA step = a 4x4x4 MMA on one TC = 64 MACs/cycle for 4 cycles;
* one warp-level WMMA (16x16x16) = 16 HMMA steps;
* each HMMA reads 8 warp-wide register operands (A pair, B pair, 4
  accumulators) and writes 4 — the register-bandwidth appetite that caps TC
  efficiency (paper SS II-A and Fig 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.tensorcore.dot_product import dot4

#: MMA shape of one TC step.
MMA_M, MMA_N, MMA_K = 4, 4, 4
#: Warp-level WMMA fragment shape.
WMMA_M, WMMA_N, WMMA_K = 16, 16, 16
#: HMMA steps per warp-level WMMA.
HMMA_PER_WMMA = (WMMA_M // MMA_M) * (WMMA_N // MMA_N) * (WMMA_K // MMA_K) // 4
#: Register operands read / written per HMMA instruction.
HMMA_REG_READS = 8
HMMA_REG_WRITES = 4


@dataclass(frozen=True)
class WmmaOp:
    """One warp-synchronous 16x16x16 fragment multiply-accumulate."""

    hmma_steps: int = 16
    macs: int = WMMA_M * WMMA_N * WMMA_K

    @property
    def register_reads(self) -> int:
        return self.hmma_steps * HMMA_REG_READS

    @property
    def register_writes(self) -> int:
        return self.hmma_steps * HMMA_REG_WRITES


class TensorCore:
    """Functional model of one TC: computes D = A @ B + C per 4x4x4 step."""

    def __init__(self, fp16_inputs: bool = True) -> None:
        self.fp16_inputs = fp16_inputs
        self.mma_count = 0

    def mma_step(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray
    ) -> np.ndarray:
        """One 4x4x4 step via 16 parallel dot-product units."""
        a = np.asarray(a, dtype=np.float32)
        b = np.asarray(b, dtype=np.float32)
        c = np.asarray(c, dtype=np.float32)
        if a.shape != (MMA_M, MMA_K) or b.shape != (MMA_K, MMA_N):
            raise SimulationError(
                f"mma_step expects ({MMA_M},{MMA_K})x({MMA_K},{MMA_N}); "
                f"got {a.shape} x {b.shape}"
            )
        if c.shape != (MMA_M, MMA_N):
            raise SimulationError(f"accumulator must be 4x4, got {c.shape}")
        d = np.empty((MMA_M, MMA_N), dtype=np.float32)
        for i in range(MMA_M):
            for j in range(MMA_N):
                d[i, j] = dot4(a[i, :], b[:, j], c[i, j], self.fp16_inputs)
        self.mma_count += 1
        return d

    def wmma(self, a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
        """A 16x16x16 warp fragment op decomposed into 4x4x4 steps."""
        a = np.asarray(a, dtype=np.float32)
        b = np.asarray(b, dtype=np.float32)
        c = np.asarray(c, dtype=np.float32).copy()
        if a.shape != (WMMA_M, WMMA_K) or b.shape != (WMMA_K, WMMA_N):
            raise SimulationError(
                f"wmma expects 16x16 fragments, got {a.shape} x {b.shape}"
            )
        for i0 in range(0, WMMA_M, MMA_M):
            for j0 in range(0, WMMA_N, MMA_N):
                acc = c[i0 : i0 + MMA_M, j0 : j0 + MMA_N]
                for k0 in range(0, WMMA_K, MMA_K):
                    acc = self.mma_step(
                        a[i0 : i0 + MMA_M, k0 : k0 + MMA_K],
                        b[k0 : k0 + MMA_K, j0 : j0 + MMA_N],
                        acc,
                    )
                c[i0 : i0 + MMA_M, j0 : j0 + MMA_N] = acc
        return c
