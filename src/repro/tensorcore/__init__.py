"""TensorCore model: dot-product-based 4x4x4 MMA with RF-bound timing."""

from repro.tensorcore.dot_product import dot4
from repro.tensorcore.tensor_core import TensorCore, WmmaOp
from repro.tensorcore.timing import (
    TcGemmEstimate,
    estimate_tc_gemm_efficiency,
    wmma_schedule,
)

__all__ = [
    "TcGemmEstimate",
    "TensorCore",
    "WmmaOp",
    "dot4",
    "estimate_tc_gemm_efficiency",
    "wmma_schedule",
]
