"""SMA: Simultaneous Multi-mode Architecture — DAC 2020 reproduction.

A cycle-level simulation library reproducing "Balancing Efficiency and
Flexibility for DNN Acceleration via Temporal GPU-Systolic Array
Integration" (Guo et al.): a Volta-like GPU substrate whose MAC units
temporally reconfigure into semi-broadcast weight-stationary systolic
arrays driven by the asynchronous LSMA instruction.

Public entry points:

* ``repro.api`` — the :class:`~repro.api.session.Session` facade: string
  specs for platforms/models, a shared timing cache, batched requests;
* ``repro.config`` — named system configurations (Table I);
* ``repro.gemm.executor.GemmExecutor`` — time a GEMM on simd/tc/sma;
* ``repro.platforms`` — run whole DNN graphs per platform;
* ``repro.dnn.zoo`` — the Table II model graphs;
* ``repro.apps.driving`` — the Fig 9 driving pipeline;
* ``repro.experiments`` — regenerate every paper table and figure.
"""

from repro.api import (
    BatchResult,
    CacheStats,
    GemmReport,
    ModelReport,
    Session,
    SimRequest,
    TimingCache,
)
from repro.config import (
    DataType,
    GpuConfig,
    SmaConfig,
    SystemConfig,
    TpuConfig,
    system_gpu_4tc,
    system_gpu_simd,
    system_sma,
    system_tpu,
)
from repro.errors import (
    ConfigError,
    GraphError,
    LoweringError,
    MappingError,
    ReproError,
    SchedulingError,
    SimulationError,
    UnsupportedOperationError,
)
from repro.gemm.executor import GemmExecutor, GemmTiming
from repro.gemm.problem import GemmProblem

__version__ = "1.0.0"

__all__ = [
    "BatchResult",
    "CacheStats",
    "ConfigError",
    "DataType",
    "GemmExecutor",
    "GemmProblem",
    "GemmReport",
    "GemmTiming",
    "GpuConfig",
    "ModelReport",
    "Session",
    "SimRequest",
    "TimingCache",
    "GraphError",
    "LoweringError",
    "MappingError",
    "ReproError",
    "SchedulingError",
    "SimulationError",
    "SmaConfig",
    "SystemConfig",
    "TpuConfig",
    "UnsupportedOperationError",
    "__version__",
    "system_gpu_4tc",
    "system_gpu_simd",
    "system_sma",
    "system_tpu",
]
