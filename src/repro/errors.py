"""Exception hierarchy for the SMA reproduction library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Subclasses mark which subsystem raised the error.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """An architecture configuration is inconsistent or unsupported."""


class SimulationError(ReproError):
    """A simulator reached an invalid state (deadlock, overflow, ...)."""


class MappingError(ReproError):
    """A GEMM/operator mapping request cannot be satisfied."""


class GraphError(ReproError):
    """A DNN layer graph is malformed (cycles, dangling inputs, ...)."""


class LoweringError(ReproError):
    """An operator could not be lowered to a platform's execution model."""


class UnsupportedOperationError(LoweringError):
    """A platform has no way to execute the requested operator natively."""


class SchedulingError(ReproError):
    """The application-level resource scheduler hit an invalid state."""


class ClusterError(ReproError):
    """Base class for cluster-service (remote dispatch) failures."""


class ClusterProtocolError(ClusterError):
    """A wire message was malformed or had an unexpected type."""


class ProtocolVersionError(ClusterProtocolError):
    """Client and server speak different protocol versions."""


class FingerprintMismatchError(ClusterError):
    """A shard point's config fingerprint does not match the server's.

    The client and server expanded the same request to different
    canonical fingerprints — their code or configuration has diverged, so
    executing the shard would be silently wrong rather than merely stale.
    """


class ClusterConnectionError(ClusterError):
    """A cluster server could not be reached or died mid-conversation."""


class ClusterUnavailableError(ClusterError):
    """A reachable server refused work (draining or shutting down)."""


class BatchRequestError(ReproError):
    """One request inside a batch or sweep failed.

    Carries the failing request's position (``index``), its caller
    ``tag``, and — for sweep points — the stable ``request_id``, so a
    failure in request 37 of a long batch is diagnosable. The original
    exception is chained as ``__cause__``.
    """

    def __init__(
        self,
        message: str,
        *,
        index: int | None = None,
        tag: str | None = None,
        request_id: str | None = None,
    ) -> None:
        super().__init__(message)
        self.index = index
        self.tag = tag
        self.request_id = request_id

    @classmethod
    def wrap(
        cls,
        error: Exception,
        request,
        index: int,
        request_id: str | None = None,
    ) -> "BatchRequestError":
        """Build the wrapper for ``request`` (a SimRequest-shaped object).

        The caller still raises it (``raise ... from error``) so the
        original exception chains as ``__cause__``.
        """
        workload = request.model or str(request.gemm)
        scenario = getattr(request, "scenario", None)
        if scenario is not None:
            workload = scenario.name
        where = f" [{request_id}]" if request_id is not None else ""
        return cls(
            f"request {index}{where} ({request.kind} {workload} on"
            f" {request.platform}, tag={request.tag!r}) failed: {error}",
            index=index,
            tag=request.tag,
            request_id=request_id,
        )
