"""Exception hierarchy for the SMA reproduction library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Subclasses mark which subsystem raised the error.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """An architecture configuration is inconsistent or unsupported."""


class SimulationError(ReproError):
    """A simulator reached an invalid state (deadlock, overflow, ...)."""


class MappingError(ReproError):
    """A GEMM/operator mapping request cannot be satisfied."""


class GraphError(ReproError):
    """A DNN layer graph is malformed (cycles, dangling inputs, ...)."""


class LoweringError(ReproError):
    """An operator could not be lowered to a platform's execution model."""


class UnsupportedOperationError(LoweringError):
    """A platform has no way to execute the requested operator natively."""


class SchedulingError(ReproError):
    """The application-level resource scheduler hit an invalid state."""
