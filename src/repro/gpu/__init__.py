"""Cycle-level GPU substrate: SM pipeline, memory system, warp schedulers."""

from repro.gpu.caches import CacheModel
from repro.gpu.coalescer import coalesce
from repro.gpu.dram import DramModel
from repro.gpu.gpu import GpuTimingModel, KernelLaunch, LaunchResult
from repro.gpu.regfile import RegisterFileModel
from repro.gpu.scheduler import (
    GreedyThenOldestScheduler,
    LooseRoundRobinScheduler,
    SchedulerPolicy,
    SmaRoundRobinScheduler,
    make_scheduler,
)
from repro.gpu.scoreboard import Scoreboard
from repro.gpu.shared_memory import SharedMemoryModel
from repro.gpu.sm import KernelSpec, SmResult, StreamingMultiprocessor

__all__ = [
    "CacheModel",
    "DramModel",
    "GpuTimingModel",
    "GreedyThenOldestScheduler",
    "KernelLaunch",
    "KernelSpec",
    "LaunchResult",
    "LooseRoundRobinScheduler",
    "RegisterFileModel",
    "Scoreboard",
    "SchedulerPolicy",
    "SharedMemoryModel",
    "SmResult",
    "SmaRoundRobinScheduler",
    "StreamingMultiprocessor",
    "coalesce",
    "make_scheduler",
]
