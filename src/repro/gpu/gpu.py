"""Whole-GPU kernel timing: thread-block waves + DRAM bandwidth bound.

The SM pipeline times one resident thread block; a kernel launches many.
Following sampling-based GPGPU-Sim methodology, a launch is timed as

    cycles = launch_overhead
           + max(waves * tb_cycles, dram_bound, exposed_latency_floor)

where ``waves = ceil(num_tbs / (num_sms * tbs_per_sm))`` and the DRAM bound
converts the kernel's aggregate global traffic through the HBM bandwidth.
This keeps inter-TB interaction as a bandwidth constraint, which is the
level of fidelity the paper's figures rely on (DESIGN.md SS2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.mathutil import ceil_div
from repro.common.stats import CounterBag
from repro.config import GpuConfig
from repro.errors import SimulationError
from repro.gpu.dram import DramModel, DramTraffic

#: Fixed kernel-launch overhead (driver + dispatch), in GPU cycles.
DEFAULT_LAUNCH_OVERHEAD_CYCLES = 2000.0


@dataclass(frozen=True)
class KernelLaunch:
    """A kernel described by one simulated thread block plus its grid.

    When ``use_counter_traffic`` is False the DRAM bound ignores the raw
    per-TB global byte counters (which count L1-level traffic with no
    inter-TB reuse) and uses ``extra_traffic`` alone — callers supply an
    L2-reuse-filtered estimate there (see ``repro.gemm.executor``).
    """

    name: str
    tb_cycles: float
    num_thread_blocks: int
    tb_counters: CounterBag
    tbs_per_sm: int = 1
    extra_traffic: DramTraffic = field(default_factory=DramTraffic)
    use_counter_traffic: bool = True

    def __post_init__(self) -> None:
        if self.tb_cycles < 0:
            raise SimulationError("tb_cycles must be non-negative")
        if self.num_thread_blocks <= 0:
            raise SimulationError("a launch needs at least one thread block")
        if self.tbs_per_sm <= 0:
            raise SimulationError("tbs_per_sm must be positive")


@dataclass(frozen=True)
class LaunchResult:
    """Timing and scaled event counts for a full kernel launch."""

    name: str
    cycles: float
    waves: int
    compute_cycles: float
    dram_cycles: float
    counters: CounterBag

    @property
    def dram_bound(self) -> bool:
        return self.dram_cycles > self.compute_cycles


class GpuTimingModel:
    """Composes per-thread-block SM results into kernel launch times."""

    def __init__(
        self,
        config: GpuConfig,
        launch_overhead_cycles: float = DEFAULT_LAUNCH_OVERHEAD_CYCLES,
    ) -> None:
        self.config = config
        self.launch_overhead_cycles = launch_overhead_cycles
        self.dram = DramModel(config)

    def launch(self, launch: KernelLaunch) -> LaunchResult:
        """Time a kernel launch; counters scale to the whole grid."""
        concurrent = self.config.num_sms * launch.tbs_per_sm
        waves = ceil_div(launch.num_thread_blocks, concurrent)
        compute_cycles = waves * launch.tb_cycles

        grid_counters = launch.tb_counters.scaled(float(launch.num_thread_blocks))
        if launch.use_counter_traffic:
            traffic = DramTraffic(
                read_bytes=grid_counters.get("global_read_bytes")
                + launch.extra_traffic.read_bytes,
                write_bytes=grid_counters.get("global_write_bytes")
                + launch.extra_traffic.write_bytes,
            )
        else:
            traffic = launch.extra_traffic
        grid_counters.add("dram_bytes", traffic.total_bytes)
        dram_cycles = self.dram.min_cycles(traffic)
        latency_floor = float(self.dram.access_latency())

        total = self.launch_overhead_cycles + max(
            compute_cycles, dram_cycles, latency_floor
        )
        grid_counters.add("kernel_cycles", total)
        return LaunchResult(
            name=launch.name,
            cycles=total,
            waves=waves,
            compute_cycles=compute_cycles,
            dram_cycles=dram_cycles,
            counters=grid_counters,
        )

    def sustained_flops(self, result: LaunchResult) -> float:
        """Achieved FLOP/s of a launch on this GPU."""
        if result.cycles <= 0:
            return 0.0
        flops = 2.0 * (
            result.counters.get("fp32_macs")
            + result.counters.get("fp16_macs")
            + result.counters.get("sma_macs")
        )
        seconds = result.cycles / (self.config.clock_ghz * 1e9)
        if seconds <= 0:
            return 0.0
        return flops / seconds
