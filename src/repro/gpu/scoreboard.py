"""Per-warp register scoreboard for dependence tracking.

Registers are abstract ids scoped to a warp. The scoreboard records when
each pending destination becomes readable; an instruction may issue once all
of its sources are ready. WAW hazards simply overwrite the ready time (the
pipelines complete in order per warp for a given unit, which is all the
trace generators rely on).
"""

from __future__ import annotations

from typing import Iterable


class Scoreboard:
    """Tracks outstanding register writes for every warp."""

    def __init__(self, num_warps: int) -> None:
        self._pending: list[dict[int, float]] = [dict() for _ in range(num_warps)]

    def ready(self, warp_id: int, sources: Iterable[int], now: float) -> bool:
        """True when every source register is readable at ``now``."""
        pending = self._pending[warp_id]
        if not pending:
            return True
        for register in sources:
            ready_at = pending.get(register)
            if ready_at is not None and ready_at > now:
                return False
        return True

    def set_pending(
        self, warp_id: int, destinations: Iterable[int], ready_at: float
    ) -> None:
        """Mark destination registers as pending until ``ready_at``."""
        pending = self._pending[warp_id]
        for register in destinations:
            current = pending.get(register, 0.0)
            pending[register] = max(current, ready_at)

    def earliest_ready(self, warp_id: int, sources: Iterable[int]) -> float:
        """The cycle at which all ``sources`` become readable (0 if now)."""
        pending = self._pending[warp_id]
        latest = 0.0
        for register in sources:
            ready_at = pending.get(register)
            if ready_at is not None:
                latest = max(latest, ready_at)
        return latest

    def prune(self, warp_id: int, now: float) -> None:
        """Drop entries already ready (keeps the dicts small)."""
        pending = self._pending[warp_id]
        stale = [reg for reg, ready_at in pending.items() if ready_at <= now]
        for reg in stale:
            del pending[reg]

    def outstanding(self, warp_id: int) -> int:
        return len(self._pending[warp_id])
