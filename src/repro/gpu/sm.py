"""Cycle-level streaming-multiprocessor pipeline.

This is the reproduction's analogue of the paper's modified GPGPU-Sim: warp
programs (``repro.isa``) execute against structural resources — issue slots,
FP32/FP16 pipelines, the load-store unit with shared-memory bank conflicts
and global coalescing, register-file operand ports, TensorCores, and the
SMA systolic controller (attached via :class:`LsmaEngine`).

Timing emerges from three mechanisms only:

* **dependences** — the scoreboard delays consumers of pending registers;
* **structural throughput** — every unit is a :class:`ThroughputResource`
  with a service rate and a bounded issue queue;
* **synchronization** — thread-block barriers, cooperative-group barriers
  and the ``SMAWAIT`` drain of the asynchronous systolic controller.

There are no per-kernel fudge factors; the three GEMM flavours differ only
in the instruction traces they feed in.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.common.stats import CounterBag
from repro.config import GpuConfig
from repro.errors import SimulationError
from repro.gpu.coalescer import coalesce
from repro.gpu.regfile import RegisterFileModel
from repro.gpu.scheduler import SchedulerPolicy, make_scheduler
from repro.gpu.scoreboard import Scoreboard
from repro.gpu.shared_memory import SharedMemoryModel
from repro.isa.instructions import ExecUnit, Instruction, Opcode
from repro.isa.program import WarpProgram

#: MACs performed by one HMMA instruction (4 cycles on one 4x4x4 TC).
HMMA_MACS = 256
#: Cycles one HMMA occupies its TensorCore.
HMMA_TC_CYCLES = 4


@dataclass(frozen=True)
class LsmaIssue:
    """Outcome of handing an LSMA instruction to the systolic controller."""

    accepted: bool
    busy_until: float = 0.0
    counters: CounterBag | None = None
    lsu_overhead_cycles: float = 0.0


class LsmaEngine(abc.ABC):
    """Interface the SMA systolic controller exposes to the SM pipeline."""

    @abc.abstractmethod
    def issue(self, unit_id: int, k_extent: int, now: float) -> LsmaIssue:
        """Try to start one LSMA operation on ``unit_id`` at cycle ``now``."""

    @abc.abstractmethod
    def idle_at(self, now: float) -> float:
        """Cycle at which every systolic unit has drained."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Clear busy state between kernels."""


class ThroughputResource:
    """A service pipeline with rate ``capacity`` per cycle and bounded queue.

    ``accept`` books ``cost`` cycles of service; ``can_accept`` refuses when
    the backlog exceeds ``queue_depth`` cycles, which stalls the issuing
    scheduler — exactly how a full issue queue back-pressures a real SM.
    """

    def __init__(self, name: str, queue_depth: float = 8.0) -> None:
        self.name = name
        self.queue_depth = queue_depth
        self.free_at = 0.0
        self.busy_cycles = 0.0

    def can_accept(self, now: float, cost: float) -> bool:
        """Admit when the backlog is within the queue depth.

        The bound is on *outstanding* work, not on the op's own cost —
        otherwise a single op costlier than the queue (e.g. a 32-way bank
        conflict) could never issue and the warp would livelock.
        """
        if cost <= 0:
            return True
        backlog = max(0.0, self.free_at - now)
        return backlog <= self.queue_depth

    def accept(self, now: float, cost: float) -> float:
        """Book the work; returns its completion cycle."""
        start = max(self.free_at, now)
        self.free_at = start + cost
        self.busy_cycles += cost
        return self.free_at

    def utilization(self, cycles: float) -> float:
        if cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / cycles)


@dataclass
class KernelSpec:
    """Everything the SM needs to run one thread block's trace."""

    name: str
    programs: list[WarpProgram]
    groups: dict[int, frozenset[int]] = field(default_factory=dict)
    scheduler: str = "gto"
    lsma_engine: LsmaEngine | None = None

    def __post_init__(self) -> None:
        if not self.programs:
            raise SimulationError("kernel needs at least one warp program")
        for group_id, members in self.groups.items():
            for warp_id in members:
                if not (0 <= warp_id < len(self.programs)):
                    raise SimulationError(
                        f"group {group_id} references warp {warp_id} out of range"
                    )

    @property
    def num_warps(self) -> int:
        return len(self.programs)


@dataclass
class SmResult:
    """Timing and event counts for one thread block on one SM."""

    cycles: float
    counters: CounterBag
    stalls: CounterBag
    name: str = ""

    def flops(self) -> float:
        """FLOPs executed (FMA counts as two)."""
        return 2.0 * (
            self.counters.get("fp32_macs")
            + self.counters.get("fp16_macs")
            + self.counters.get("sma_macs")
        )

    def flop_efficiency(self, peak_flops_per_cycle: float) -> float:
        """Achieved / peak FLOPs for this thread block's residency."""
        if self.cycles <= 0 or peak_flops_per_cycle <= 0:
            return 0.0
        return self.flops() / (self.cycles * peak_flops_per_cycle)


@dataclass
class _WarpState:
    pc: int = 0
    blocked_until: float = 0.0
    done: bool = False
    waiting_barrier: tuple[int, int] | None = None  # (group, instance)
    barrier_counts: dict[int, int] = field(default_factory=dict)


class StreamingMultiprocessor:
    """Executes one thread block's warp traces with structural timing."""

    #: group id used for whole-thread-block BAR instructions
    TB_GROUP = -1

    def __init__(
        self,
        config: GpuConfig,
        collector_efficiency: float = 0.95,
        max_cycles: int = 40_000_000,
    ) -> None:
        self.config = config
        self.collector_efficiency = collector_efficiency
        self.max_cycles = max_cycles
        self.shared_memory = SharedMemoryModel(
            num_banks=config.shared_memory_banks,
            bank_bytes=config.shared_memory_bank_bytes,
        )

    # -- resource construction -------------------------------------------------
    def _build_resources(self) -> dict[str, ThroughputResource]:
        config = self.config
        return {
            # 64 FP32 lanes serve two warp-wide FMA ops per cycle.
            "fma": ThroughputResource("fma"),
            # Dedicated INT32 pipe, same width.
            "alu": ThroughputResource("alu"),
            # One shared-memory (or 4-sector global) access group per cycle.
            "lsu": ThroughputResource("lsu", queue_depth=6.0),
            # 4 TensorCores, each 4 cycles per HMMA -> 1 HMMA/cycle aggregate.
            "tensor": ThroughputResource("tensor"),
        }

    # -- issue cost model --------------------------------------------------------
    def _issue_costs(
        self, inst: Instruction
    ) -> tuple[str | None, float, float, int, int]:
        """Return (unit_name, unit_cost, latency, rf_reads, rf_writes)."""
        opcode = inst.opcode
        if opcode in (Opcode.FFMA, Opcode.HFMA2, Opcode.FADD):
            return "fma", 0.5, inst.latency, len(inst.srcs), len(inst.dst)
        if opcode in (Opcode.IMAD, Opcode.MOV, Opcode.NOP):
            return "alu", 0.5, inst.latency, len(inst.srcs), len(inst.dst)
        if opcode is Opcode.HMMA:
            # Architectural operand appetite (repro.tensorcore): 2 A regs,
            # 2 B regs, 4 accumulators read; 4 accumulators written.
            return "tensor", 1.0, inst.latency, 8, 4
        if opcode in (Opcode.LDS, Opcode.STS):
            degree = self.shared_memory.access(inst.mem).cycles
            latency = self.config.shared_memory_latency_cycles + degree - 1
            if opcode is Opcode.STS:
                latency = degree
            return "lsu", float(degree), latency, len(inst.srcs), len(inst.dst)
        if opcode in (Opcode.LDG, Opcode.STG):
            sectors = coalesce(inst.mem).sectors
            cost = max(0.25, sectors / 4.0)
            latency = self.config.dram_latency_cycles
            if opcode is Opcode.STG:
                latency = 1
            return "lsu", cost, latency, len(inst.srcs), len(inst.dst)
        if opcode is Opcode.LDC:
            return "lsu", 0.25, inst.latency, len(inst.srcs), len(inst.dst)
        if opcode is Opcode.LSMA:
            # Unit cost handled by the systolic controller.
            return None, 0.0, inst.latency, len(inst.srcs), len(inst.dst)
        if inst.is_barrier or opcode is Opcode.EXIT:
            return None, 0.0, 1, 0, 0
        raise SimulationError(f"no issue model for opcode {opcode}")

    # -- event counting ----------------------------------------------------------
    def _count_events(self, inst: Instruction, counters: CounterBag) -> None:
        opcode = inst.opcode
        counters.add("instructions_issued")
        if opcode is Opcode.FFMA:
            counters.add("fp32_macs", 32)
        elif opcode is Opcode.HFMA2:
            counters.add("fp16_macs", 64)
        elif opcode is Opcode.FADD:
            counters.add("fp32_ops", 32)
        elif opcode is Opcode.HMMA:
            counters.add("fp16_macs", HMMA_MACS)
        elif opcode is Opcode.LDS:
            result = self.shared_memory.access(inst.mem)
            counters.add("smem_read_words", result.words_touched)
        elif opcode is Opcode.STS:
            result = self.shared_memory.access(inst.mem)
            counters.add("smem_write_words", result.words_touched)
        elif opcode is Opcode.LDG:
            counters.add("global_read_bytes", coalesce(inst.mem).bytes_moved)
        elif opcode is Opcode.STG:
            counters.add("global_write_bytes", coalesce(inst.mem).bytes_moved)
        elif opcode is Opcode.LDC:
            counters.add("const_read_words", inst.mem.active_lanes)
        elif opcode in (Opcode.BAR, Opcode.CGSYNC, Opcode.SMAWAIT):
            counters.add("sync_ops")

    # -- main loop -----------------------------------------------------------------
    def run(self, kernel: KernelSpec) -> SmResult:
        """Simulate the kernel to completion; returns cycles and events."""
        num_warps = kernel.num_warps
        if num_warps > self.config.max_warps_per_sm:
            raise SimulationError(
                f"{num_warps} warps exceed the SM limit "
                f"{self.config.max_warps_per_sm}"
            )
        if kernel.lsma_engine is not None:
            kernel.lsma_engine.reset()

        resources = self._build_resources()
        regfile = RegisterFileModel(self.config, self.collector_efficiency)
        rf_read = ThroughputResource("rf_read")
        rf_write = ThroughputResource("rf_write")
        read_cost = 1.0 / regfile.read_capacity
        write_cost = 1.0 / regfile.write_capacity

        scoreboard = Scoreboard(num_warps)
        counters = CounterBag()
        stalls = CounterBag()
        warps = [_WarpState() for _ in range(num_warps)]
        num_schedulers = self.config.schedulers_per_sm
        policies: list[SchedulerPolicy] = [
            make_scheduler(kernel.scheduler) for _ in range(num_schedulers)
        ]
        barrier_arrivals: dict[tuple[int, int], set[int]] = {}
        group_sizes = {gid: len(members) for gid, members in kernel.groups.items()}
        group_sizes[self.TB_GROUP] = num_warps

        now = 0.0
        done_count = 0
        while done_count < num_warps:
            if now > self.max_cycles:
                raise SimulationError(
                    f"kernel {kernel.name!r} exceeded {self.max_cycles} cycles"
                    " (likely a barrier deadlock in the trace)"
                )
            # Release completed barriers.
            released: list[tuple[int, int]] = []
            for key, arrived in barrier_arrivals.items():
                group_id, _instance = key
                if len(arrived) >= group_sizes.get(group_id, num_warps):
                    for warp_id in arrived:
                        warps[warp_id].waiting_barrier = None
                        warps[warp_id].blocked_until = now
                    released.append(key)
            for key in released:
                del barrier_arrivals[key]

            for scheduler_id, policy in enumerate(policies):
                candidates = [
                    warp_id
                    for warp_id in range(scheduler_id, num_warps, num_schedulers)
                    if not warps[warp_id].done
                    and warps[warp_id].waiting_barrier is None
                    and warps[warp_id].blocked_until <= now
                ]
                if not candidates:
                    continue
                issued = False
                blocked_reason = "stall_scoreboard"
                for warp_id in policy.order(candidates):
                    state = warps[warp_id]
                    inst = kernel.programs[warp_id][state.pc]
                    if not scoreboard.ready(warp_id, inst.srcs, now):
                        blocked_reason = "stall_scoreboard"
                        continue
                    unit_name, unit_cost, latency, reads, writes = (
                        self._issue_costs(inst)
                    )
                    if inst.opcode is Opcode.LSMA:
                        if kernel.lsma_engine is None:
                            raise SimulationError(
                                "trace contains LSMA but no engine is attached"
                            )
                        k_extent, unit_id = inst.payload
                        outcome = kernel.lsma_engine.issue(unit_id, k_extent, now)
                        if not outcome.accepted:
                            blocked_reason = "stall_sma_busy"
                            continue
                        if outcome.counters is not None:
                            counters.merge(outcome.counters)
                        if outcome.lsu_overhead_cycles > 0:
                            resources["lsu"].accept(
                                now, outcome.lsu_overhead_cycles
                            )
                    else:
                        if unit_name is not None:
                            resource = resources[unit_name]
                            if not resource.can_accept(now, unit_cost):
                                blocked_reason = f"stall_{unit_name}"
                                continue
                        if reads and not rf_read.can_accept(now, reads * read_cost):
                            blocked_reason = "stall_rf_read"
                            continue
                        if writes and not rf_write.can_accept(
                            now, writes * write_cost
                        ):
                            blocked_reason = "stall_rf_write"
                            continue
                        if unit_name is not None:
                            resources[unit_name].accept(now, unit_cost)
                        if reads:
                            rf_read.accept(now, reads * read_cost)
                            regfile.total_reads += reads
                        if writes:
                            rf_write.accept(now, writes * write_cost)
                            regfile.total_writes += writes

                    # The instruction issues.
                    self._count_events(inst, counters)
                    if inst.dst:
                        scoreboard.set_pending(warp_id, inst.dst, now + latency)
                    if inst.opcode is Opcode.BAR or inst.opcode is Opcode.CGSYNC:
                        group_id = (
                            self.TB_GROUP
                            if inst.opcode is Opcode.BAR
                            else inst.group
                        )
                        instance = state.barrier_counts.get(group_id, 0)
                        state.barrier_counts[group_id] = instance + 1
                        state.waiting_barrier = (group_id, instance)
                        barrier_arrivals.setdefault(
                            (group_id, instance), set()
                        ).add(warp_id)
                    elif inst.opcode is Opcode.SMAWAIT:
                        if kernel.lsma_engine is None:
                            raise SimulationError(
                                "trace contains SMAWAIT but no engine is attached"
                            )
                        state.blocked_until = max(
                            now + 1.0, kernel.lsma_engine.idle_at(now)
                        )
                    state.pc += 1
                    if inst.opcode is Opcode.EXIT or state.pc >= len(
                        kernel.programs[warp_id]
                    ):
                        state.done = True
                        done_count += 1
                    policy.notify_issued(warp_id)
                    issued = True
                    break
                if not issued:
                    stalls.add(blocked_reason)
            now += 1.0

        if kernel.lsma_engine is not None:
            now = max(now, kernel.lsma_engine.idle_at(now))

        counters.add("cycles", now)
        counters.add("rf_reads", regfile.total_reads)
        counters.add("rf_writes", regfile.total_writes)
        for name, resource in resources.items():
            counters.add(f"busy_{name}", resource.busy_cycles)
        counters.add("busy_rf_read", rf_read.busy_cycles)
        counters.add("busy_rf_write", rf_write.busy_cycles)
        return SmResult(cycles=now, counters=counters, stalls=stalls, name=kernel.name)
