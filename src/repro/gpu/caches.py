"""Set-associative LRU cache model (L1 / L2).

Used at sector granularity by the global-memory path. This is a stateful
functional model: it classifies each access as hit or miss and tracks
eviction traffic; timing is applied by the SM pipeline / DRAM model using
the configured latencies.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import SimulationError


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


@dataclass
class _CacheSet:
    lines: "OrderedDict[int, bool]" = field(default_factory=OrderedDict)
    # key: tag, value: dirty bit; OrderedDict order is LRU -> MRU.


class CacheModel:
    """A classic set-associative write-back LRU cache."""

    def __init__(
        self,
        capacity_bytes: int,
        line_bytes: int = 128,
        associativity: int = 4,
        name: str = "cache",
    ) -> None:
        if capacity_bytes <= 0 or line_bytes <= 0 or associativity <= 0:
            raise SimulationError("cache geometry must be positive")
        num_lines = capacity_bytes // line_bytes
        if num_lines < associativity:
            raise SimulationError(
                f"{name}: capacity {capacity_bytes} too small for "
                f"associativity {associativity}"
            )
        self.name = name
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.num_sets = num_lines // associativity
        if self.num_sets == 0:
            raise SimulationError(f"{name}: zero sets")
        self._sets = [_CacheSet() for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def _locate(self, address: int) -> tuple[_CacheSet, int]:
        line = address // self.line_bytes
        return self._sets[line % self.num_sets], line // self.num_sets

    def access(self, address: int, is_store: bool = False) -> bool:
        """Touch one address; returns True on hit.

        Misses allocate (write-allocate policy); LRU victims with the dirty
        bit set count as writebacks.
        """
        cache_set, tag = self._locate(address)
        lines = cache_set.lines
        if tag in lines:
            self.stats.hits += 1
            dirty = lines.pop(tag) or is_store
            lines[tag] = dirty
            return True
        self.stats.misses += 1
        if len(lines) >= self.associativity:
            _victim_tag, victim_dirty = lines.popitem(last=False)
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.writebacks += 1
        lines[tag] = is_store
        return False

    def flush(self) -> int:
        """Invalidate everything; returns the number of dirty writebacks."""
        writebacks = 0
        for cache_set in self._sets:
            writebacks += sum(1 for dirty in cache_set.lines.values() if dirty)
            cache_set.lines.clear()
        self.stats.writebacks += writebacks
        return writebacks

    @property
    def resident_lines(self) -> int:
        return sum(len(s.lines) for s in self._sets)
