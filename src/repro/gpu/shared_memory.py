"""Banked shared-memory (scratchpad) model with conflict serialization.

Volta shared memory has 32 banks, each 4 bytes wide, serving one word per
cycle. A warp access that touches B distinct words in the same bank
serializes into B bank cycles; lanes reading the *same* word are merged by
the broadcast network and cost a single cycle. This is the mechanism behind
Fig 7 (right): the TPU-style weight-stationary dataflow issues uncoalesced
A *and* C accesses whose diagonal patterns collide in the banks, while the
paper's semi-broadcast dataflow keeps the collisions on A only and maps them
onto dedicated banks.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.isa.instructions import MemAccess, MemSpace


@dataclass(frozen=True)
class SharedAccessResult:
    """Outcome of a warp-wide shared-memory access."""

    cycles: int            # bank cycles consumed (1 == conflict free)
    words_touched: int     # distinct words after broadcast merging
    conflict_degree: int   # max distinct words mapped to one bank


class SharedMemoryModel:
    """Conflict model over a configurable subset of banks.

    ``bank_offset``/``num_banks`` restrict the access to a bank window, which
    models the paper's assignment of 8 banks to each SMA unit's A-feed
    (SS IV-B, Table I: "32 banks (8 for all SMA units)").
    """

    def __init__(
        self,
        num_banks: int = 32,
        bank_bytes: int = 4,
        bank_offset: int = 0,
    ) -> None:
        if num_banks <= 0:
            raise SimulationError("shared memory needs at least one bank")
        if bank_bytes <= 0:
            raise SimulationError("bank width must be positive")
        self.num_banks = num_banks
        self.bank_bytes = bank_bytes
        self.bank_offset = bank_offset

    def bank_of(self, address: int) -> int:
        """The bank index serving byte ``address``."""
        word = address // self.bank_bytes
        return self.bank_offset + (word % self.num_banks)

    def access(self, access: MemAccess) -> SharedAccessResult:
        """Cost one warp-wide access; raises for non-shared spaces."""
        if access.space is not MemSpace.SHARED:
            raise SimulationError(
                f"shared-memory model got a {access.space.value} access"
            )
        return self.cost_addresses(access.lane_addresses)

    def cost_addresses(self, addresses: tuple[int, ...]) -> SharedAccessResult:
        """Conflict cost of a set of per-lane byte addresses."""
        words_per_bank: dict[int, set[int]] = defaultdict(set)
        for address in addresses:
            word = address // self.bank_bytes
            words_per_bank[word % self.num_banks].add(word)
        if not words_per_bank:
            raise SimulationError("empty shared-memory access")
        degree = max(len(words) for words in words_per_bank.values())
        touched = sum(len(words) for words in words_per_bank.values())
        return SharedAccessResult(
            cycles=degree, words_touched=touched, conflict_degree=degree
        )

    def conflict_free(self, addresses: tuple[int, ...]) -> bool:
        """True when the access completes in a single bank cycle."""
        return self.cost_addresses(addresses).cycles == 1
