"""Warp scheduling policies.

The baseline Volta scheduler is greedy-then-oldest (GTO): it keeps issuing
from the last warp until that warp stalls, then falls back to the oldest
ready warp. SS IV-C of the paper observes that GTO starves the
double-buffered warp sets of the SMA GEMM mapping, and adds an SMA-specific
round-robin scheduler that is active only in systolic mode. Both, plus a
loose round-robin reference, are implemented here.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.errors import ConfigError


class SchedulerPolicy(abc.ABC):
    """Chooses which ready warp a scheduler slot issues from."""

    @abc.abstractmethod
    def order(self, warp_ids: Sequence[int]) -> list[int]:
        """Return candidate warps in descending priority."""

    @abc.abstractmethod
    def notify_issued(self, warp_id: int) -> None:
        """Record that ``warp_id`` issued this cycle."""

    def notify_cycle(self) -> None:
        """Hook called once per cycle (default: nothing)."""


class GreedyThenOldestScheduler(SchedulerPolicy):
    """GTO: stick with the last issued warp, else lowest warp id (oldest)."""

    def __init__(self) -> None:
        self._last_issued: int | None = None

    def order(self, warp_ids: Sequence[int]) -> list[int]:
        ordered = sorted(warp_ids)
        if self._last_issued in ordered:
            ordered.remove(self._last_issued)
            ordered.insert(0, self._last_issued)
        return ordered

    def notify_issued(self, warp_id: int) -> None:
        self._last_issued = warp_id


class LooseRoundRobinScheduler(SchedulerPolicy):
    """LRR: rotate priority one position after every issue."""

    def __init__(self) -> None:
        self._pointer = 0

    def order(self, warp_ids: Sequence[int]) -> list[int]:
        ordered = sorted(warp_ids)
        if not ordered:
            return ordered
        pivot = self._pointer % len(ordered)
        return ordered[pivot:] + ordered[:pivot]

    def notify_issued(self, warp_id: int) -> None:
        self._pointer += 1


class SmaRoundRobinScheduler(SchedulerPolicy):
    """The paper's SMA scheduler: strict round-robin *after* the issuer.

    Priority restarts just past the last warp that issued, so the
    double-buffer producer and consumer warp sets alternate instead of the
    greedy set monopolizing the issue slots.
    """

    def __init__(self) -> None:
        self._last_issued: int | None = None

    def order(self, warp_ids: Sequence[int]) -> list[int]:
        ordered = sorted(warp_ids)
        if not ordered or self._last_issued is None:
            return ordered
        pivot = 0
        for index, warp_id in enumerate(ordered):
            if warp_id > self._last_issued:
                pivot = index
                break
        else:
            pivot = 0
        return ordered[pivot:] + ordered[:pivot]

    def notify_issued(self, warp_id: int) -> None:
        self._last_issued = warp_id


_POLICIES = {
    "gto": GreedyThenOldestScheduler,
    "lrr": LooseRoundRobinScheduler,
    "sma_rr": SmaRoundRobinScheduler,
}


def make_scheduler(policy: str) -> SchedulerPolicy:
    """Instantiate a scheduler policy by name (``gto``/``lrr``/``sma_rr``)."""
    try:
        factory = _POLICIES[policy]
    except KeyError:
        raise ConfigError(
            f"unknown scheduler policy {policy!r}; expected one of {sorted(_POLICIES)}"
        ) from None
    return factory()
