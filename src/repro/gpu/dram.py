"""DRAM bandwidth/latency model.

Global-memory traffic is bounded by HBM bandwidth. The model converts bytes
into occupancy cycles at the configured bytes/cycle and exposes the larger
of latency-bound and bandwidth-bound completion, which is how the GPU-level
composer bounds memory-bound kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import GpuConfig
from repro.errors import SimulationError


@dataclass(frozen=True)
class DramTraffic:
    """Aggregate global-memory traffic of a kernel."""

    read_bytes: float = 0.0
    write_bytes: float = 0.0

    @property
    def total_bytes(self) -> float:
        return self.read_bytes + self.write_bytes


class DramModel:
    """Converts traffic into minimum cycles at peak DRAM bandwidth."""

    def __init__(self, config: GpuConfig) -> None:
        bytes_per_second = config.dram_bandwidth_gbps * 1e9
        cycles_per_second = config.clock_ghz * 1e9
        self.bytes_per_cycle = bytes_per_second / cycles_per_second
        self.latency_cycles = config.dram_latency_cycles
        if self.bytes_per_cycle <= 0:
            raise SimulationError("DRAM bandwidth must be positive")

    def min_cycles(self, traffic: DramTraffic) -> float:
        """Bandwidth-bound lower bound on cycles to move ``traffic``."""
        if traffic.total_bytes < 0:
            raise SimulationError("negative DRAM traffic")
        return traffic.total_bytes / self.bytes_per_cycle

    def access_latency(self) -> int:
        """Unloaded latency of a single access."""
        return self.latency_cycles
