"""Register-file bank / operand-collector bandwidth model.

The register file is the structure whose bandwidth limits TensorCore GEMM
(paper SS II-A: "high register bandwidth consumption ... leads to its low
FLOPS efficiency"). We model it as a per-cycle budget of warp-wide operand
reads and writes: each bank delivers one 128 B warp operand per cycle and
the operand collectors arbitrate with a fixed efficiency that accounts for
bank camping between warps executing identical code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import GpuConfig
from repro.errors import SimulationError


@dataclass
class PortBudget:
    """Per-cycle read/write operand budget; fractional carry accumulates."""

    read_capacity: float
    write_capacity: float
    reads_used: float = 0.0
    writes_used: float = 0.0

    def reset(self) -> None:
        self.reads_used = 0.0
        self.writes_used = 0.0


class RegisterFileModel:
    """Tracks operand-port usage cycle by cycle.

    The SM pipeline calls :meth:`try_reserve` at issue; if the instruction's
    operand reads do not fit in the remaining budget of this cycle, the
    issue stalls (counted as ``rf_stall``).
    """

    def __init__(self, config: GpuConfig, collector_efficiency: float = 0.9) -> None:
        if not (0.0 < collector_efficiency <= 1.0):
            raise SimulationError("collector_efficiency must be in (0, 1]")
        self.config = config
        # One read port per bank; arbitration efficiency covers collisions
        # between warps whose identical register numbering camps on banks.
        self._budget = PortBudget(
            read_capacity=config.register_file_banks * collector_efficiency,
            write_capacity=config.register_file_banks * collector_efficiency / 2.0,
        )
        self.total_reads = 0.0
        self.total_writes = 0.0

    def new_cycle(self) -> None:
        self._budget.reset()

    def try_reserve(self, reads: int, writes: int) -> bool:
        """Reserve operand ports for one instruction; False == stall."""
        if reads < 0 or writes < 0:
            raise SimulationError("operand counts must be non-negative")
        budget = self._budget
        if budget.reads_used + reads > budget.read_capacity + 1e-9:
            return False
        if budget.writes_used + writes > budget.write_capacity + 1e-9:
            return False
        budget.reads_used += reads
        budget.writes_used += writes
        self.total_reads += reads
        self.total_writes += writes
        return True

    @property
    def read_capacity(self) -> float:
        return self._budget.read_capacity

    @property
    def write_capacity(self) -> float:
        return self._budget.write_capacity
