"""The Session facade: one front door for every simulation consumer.

A :class:`Session` owns a shared GEMM-timing cache (by default the
process-wide one) and resolves platforms and models by spec string through
:mod:`repro.api.registry`. Every platform and executor it builds shares the
cache, so identical GEMM shapes are simulated once per process no matter
how many scenarios — examples, experiments, CLI runs, batched sweeps —
request them::

    from repro.api import Session

    session = Session()
    report = session.run_model("mask_rcnn", "sma:3")
    print(report.total_ms, session.cache_stats.hits)
"""

from __future__ import annotations

from typing import Iterable, Sequence

from pathlib import Path

from repro.api.registry import build_model, build_platform, gemm_config
from repro.api.results import (
    BatchResult,
    GemmReport,
    ModelReport,
    ScheduleReport,
    ServingReport,
    SimRequest,
)
from repro.dnn.graph import LayerGraph
from repro.errors import BatchRequestError, ConfigError
from repro.gemm.cache import CacheStats, TimingCache, process_cache
from repro.gemm.executor import GemmExecutor
from repro.gemm.problem import GemmProblem
from repro.obs.metrics import record_report_metrics
from repro.obs.selfprof import profile_phase
from repro.platforms.base import Platform
from repro.schedule.streams import ScenarioSpec, instantiate_frames
from repro.schedule.timeline import TimelineScheduler
from repro.serving.qos import make_qos
from repro.systolic.dataflow import Dataflow


def _coerce_dataflow(value: Dataflow | str | None) -> Dataflow | None:
    """Normalize a dataflow given as enum or value name (``"ws"``)."""
    if value is None or isinstance(value, Dataflow):
        return value
    try:
        return Dataflow(value)
    except ValueError:
        names = tuple(flow.value for flow in Dataflow)
        raise ConfigError(
            f"unknown dataflow {value!r}; one of {names}"
        ) from None


class Session:
    """Runs models and GEMM benches against string-addressed platforms.

    Parameters
    ----------
    cache:
        The :class:`TimingCache` shared by everything this session builds.
        Defaults to the process-wide cache, so independent sessions pool
        results; pass a fresh ``TimingCache()`` for isolation.
    cache_path:
        Optional on-disk cache file. When it exists its entries are merged
        into the cache at construction (fresh processes start warm), and
        the cache is written back by :meth:`close` (or leaving a
        ``with Session(...)`` block) and after every :meth:`run_sweep`
        join.
    cluster:
        One or more ``"host:port"`` cluster-server addresses. When set,
        :meth:`run_sweep` dispatches through
        :func:`repro.cluster.dispatch.run_sweep_remote` (one shard per
        server, caches merged back on join) and
        :meth:`run_serving_split` defaults to one partition per server —
        the session becomes a front door to the fleet instead of this
        process.
    cluster_timeout_s:
        Per-shard round-trip bound for cluster dispatch (``None`` keeps
        the dispatcher's default). Raise it when single shards simulate
        longer than the default 10 minutes, or a busy server is
        misclassified as dead and its shard re-dispatched.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`. When set,
        every report this session produces increments the serving/report
        counters (:func:`~repro.obs.metrics.record_report_metrics`) and
        the scenario pipeline self-profiles its phases (``lower``,
        ``instantiate``, ``schedule``) into ``phase_seconds`` histograms.
        Attaching a registry never changes a report — observation only.
    """

    def __init__(
        self,
        cache: TimingCache | None = None,
        cache_path: "str | Path | None" = None,
        cluster: "str | Sequence[str] | None" = None,
        cluster_timeout_s: float | None = None,
        metrics=None,
    ) -> None:
        self.cache = cache if cache is not None else process_cache()
        self.cache_path = Path(cache_path) if cache_path is not None else None
        if self.cache_path is not None and self.cache_path.exists():
            self.cache.load(self.cache_path)
        if cluster is None:
            self.cluster: tuple[str, ...] = ()
        elif isinstance(cluster, str):
            self.cluster = (cluster,)
        else:
            self.cluster = tuple(cluster)
        self.cluster_timeout_s = cluster_timeout_s
        self.metrics = metrics
        self._platforms: dict[tuple, Platform] = {}
        self._executors: dict[tuple, GemmExecutor] = {}
        self._models: dict[str, LayerGraph] = {}

    # -- resolution (memoized per session) ---------------------------------------------
    def platform(self, spec: str, **kwargs) -> Platform:
        """The platform addressed by ``spec``, built once per kwargs set."""
        key = (spec, tuple(sorted(kwargs.items())))
        platform = self._platforms.get(key)
        if platform is None:
            try:
                platform = build_platform(spec, cache=self.cache, **kwargs)
            except TypeError as error:
                # e.g. a dataflow override on a platform without that axis
                raise ConfigError(
                    f"platform {spec!r} rejected options"
                    f" {sorted(kwargs)}: {error}"
                ) from None
            self._platforms[key] = platform
        return platform

    def model(self, spec: str) -> LayerGraph:
        """The layer graph addressed by ``spec``, built once per session."""
        graph = self._models.get(spec)
        if graph is None:
            graph = build_model(spec)
            self._models[spec] = graph
        return graph

    def executor(
        self,
        spec: str,
        *,
        dataflow: Dataflow = Dataflow.SEMI_BROADCAST_WS,
        scheduler: str | None = None,
    ) -> GemmExecutor:
        """A GEMM executor for the platform of ``spec``, sharing the cache.

        Distinct specs that resolve to the same frozen ``(system, backend)``
        — e.g. ``"sma"`` and ``"sma:3"`` — share one executor.
        """
        system, backend = gemm_config(spec)
        key = (system, backend, dataflow, scheduler)
        executor = self._executors.get(key)
        if executor is None:
            executor = GemmExecutor(
                system,
                backend,
                dataflow=dataflow,
                scheduler=scheduler,
                cache=self.cache,
            )
            self._executors[key] = executor
        return executor

    # -- simulation entry points -------------------------------------------------------
    def time_gemm(
        self,
        spec: str,
        problem: GemmProblem | int | Sequence[int],
        *,
        tag: str | None = None,
        dataflow: Dataflow | str | None = None,
        scheduler: str | None = None,
    ) -> GemmReport:
        """Time one GEMM on the platform of ``spec``.

        ``problem`` is a :class:`GemmProblem`, a single size ``n`` (meaning
        an ``n^3`` GEMM), or an ``(m, n, k)`` triple; bare sizes default to
        the backend's native dtype. ``dataflow`` (enum or value name) and
        ``scheduler`` override the executor defaults; the report echoes the
        overrides it was produced under.
        """
        flow = _coerce_dataflow(dataflow)
        executor = self.executor(
            spec,
            dataflow=flow if flow is not None else Dataflow.SEMI_BROADCAST_WS,
            scheduler=scheduler,
        )
        problem = self._coerce_problem(executor, problem)
        # Per-key probe (not a global counter delta, which would mislabel
        # reports when other threads hit the shared cache concurrently).
        cached = (
            self.cache.peek_timing(executor.cache_key(problem)) is not None
        )
        timing = executor.time_gemm(problem)
        report = GemmReport.from_timing(
            timing,
            platform=spec,
            cached=cached,
            tag=tag,
            dataflow=flow.value if flow is not None else None,
            scheduler=scheduler,
        )
        if self.metrics is not None:
            record_report_metrics(self.metrics, report)
        return report

    def run_model(
        self,
        model: str,
        platform: str,
        *,
        tag: str | None = None,
        platform_kwargs: dict | None = None,
    ) -> ModelReport:
        """Run a whole model graph on a platform, both addressed by spec.

        ``platform_kwargs`` (e.g. ``{"framework_overhead_s": 0.0}`` or a
        ``dataflow`` override) are forwarded to the platform factory; each
        distinct kwargs set gets its own memoized platform instance.
        """
        graph = self.model(model)
        result = self.platform(platform, **(platform_kwargs or {})).run_model(
            graph
        )
        report = ModelReport.from_result(
            result, model=model, platform=platform, tag=tag
        )
        if self.metrics is not None:
            record_report_metrics(self.metrics, report)
        return report

    def run_scenario(
        self,
        scenario: ScenarioSpec | dict,
        platform: str | None = None,
        *,
        tag: str | None = None,
        platform_kwargs: dict | None = None,
        engine: str | None = None,
        tracer=None,
    ) -> ScheduleReport:
        """Schedule a multi-stream scenario on one platform's timeline.

        ``scenario`` is a :class:`~repro.schedule.streams.ScenarioSpec`
        (or its dict form). ``platform`` binds the target when the spec
        leaves it open — which is how a sweep re-targets one scenario
        across a platform axis — and wins when both are given. Each
        stream's model is lowered once from reset platform state (so
        pricing is deterministic per request), frames are instantiated
        with the stream's priority/period/skip settings, and the scenario
        policy schedules the whole task set. ``tracer`` — an optional
        :class:`~repro.obs.trace.Tracer` — records the structured event
        stream without changing the report by a byte.
        """
        spec, platform_spec, plan, timeline = self._schedule_scenario(
            scenario, platform, platform_kwargs, engine=engine, tracer=tracer
        )
        report = ScheduleReport.from_timeline(
            spec, platform_spec, timeline, plan, tag=tag
        )
        if self.metrics is not None:
            record_report_metrics(self.metrics, report)
        return report

    def run_serving(
        self,
        scenario: ScenarioSpec | dict,
        platform: str | None = None,
        *,
        tag: str | None = None,
        platform_kwargs: dict | None = None,
        engine: str | None = None,
        tracer=None,
    ) -> ServingReport:
        """Serve a scenario open-loop and report tail latencies and drops.

        Same execution path as :meth:`run_scenario` — streams with
        ``arrivals`` release frames at their (seeded, deterministic)
        arrival times, and the scenario's ``qos`` admission policy may
        drop frames — but the result is a :class:`ServingReport`:
        per-stream p50/p95/p99 latency, goodput, and per-frame outcome
        records, the serving-side view of the same timeline. ``tracer``
        records the structured event stream without changing the report.
        """
        spec, platform_spec, plan, timeline = self._schedule_scenario(
            scenario, platform, platform_kwargs, engine=engine, tracer=tracer
        )
        report = ServingReport.from_timeline(
            spec, platform_spec, timeline, plan, tag=tag
        )
        if self.metrics is not None:
            record_report_metrics(self.metrics, report)
        return report

    def run_serving_split(
        self,
        scenario: ScenarioSpec | dict,
        platform: str | None = None,
        *,
        partitions: int | None = None,
        tag: str | None = None,
    ) -> ServingReport:
        """Serve one scenario split by stream across platform instances.

        The scenario's arrival trace is materialized once and its streams
        are partitioned round-robin; each partition replays its slice on
        its own platform instance and the per-stream reports merge into
        one :class:`ServingReport` with recomputed aggregate percentiles.
        With ``cluster=`` addresses configured, partitions default to one
        per server and dispatch remotely (dead servers re-dispatch); see
        :func:`repro.cluster.dispatch.run_serving_split`.
        """
        from repro.cluster.dispatch import run_serving_split

        if isinstance(scenario, dict):
            scenario = ScenarioSpec.from_dict(scenario)
        return run_serving_split(
            scenario,
            platform,
            partitions=partitions,
            servers=self.cluster or None,
            session=self,
            tag=tag,
            **self._cluster_kwargs(),
        )

    def _cluster_kwargs(self) -> dict:
        if self.cluster_timeout_s is None:
            return {}
        return {"timeout_s": self.cluster_timeout_s}

    def run_serving_stream(
        self,
        scenario: ScenarioSpec | dict,
        platform: str | None = None,
        *,
        tag: str | None = None,
        platform_kwargs: dict | None = None,
        keep_records: bool = False,
        max_events: int | None = None,
        stats_out: dict | None = None,
        tracer=None,
    ) -> ServingReport:
        """Serve a scenario through the bounded-memory streaming engine.

        Arrivals are consumed lazily and frames retire into O(1)
        per-stream accumulators (P² latency sketches), so trace length
        does not bound memory — the path for million-frame runs. With
        ``keep_records=True`` per-frame records are retained and the
        report equals :meth:`run_serving`'s exactly; without it the
        percentile fields are sketch estimates and ``sketches`` carries
        the estimator state. Open-loop scenarios only (closed-loop
        pacing has no static schedule to stream). See
        :mod:`repro.serving.streaming` for the semantics contract.
        """
        from repro.serving.streaming import serve_streaming

        scenario, platform_spec, target, templates = self._lower_scenario(
            scenario, platform, platform_kwargs
        )
        with profile_phase(self.metrics, "schedule"):
            report = serve_streaming(
                scenario,
                templates,
                interference=target.interference_matrix(),
                platform=platform_spec,
                tag=tag,
                keep_records=keep_records,
                max_events=max_events,
                stats_out=stats_out,
                tracer=tracer,
            )
        if self.metrics is not None:
            record_report_metrics(self.metrics, report)
        return report

    def _lower_scenario(
        self,
        scenario: ScenarioSpec | dict,
        platform: str | None,
        platform_kwargs: dict | None,
    ):
        """Coerce the spec and lower every stream's model (shared path)."""
        if isinstance(scenario, dict):
            scenario = ScenarioSpec.from_dict(scenario)
        if not isinstance(scenario, ScenarioSpec):
            raise ConfigError(
                f"run_scenario expects a ScenarioSpec, got {scenario!r}"
            )
        platform_spec = platform or scenario.platform
        if platform_spec is None:
            raise ConfigError(
                f"scenario {scenario.name!r} names no platform; pass one"
                " (e.g. session.run_scenario(spec, 'sma:3'))"
            )
        kwargs = dict(platform_kwargs or {})
        if scenario.framework_overhead_s is not None:
            kwargs.setdefault(
                "framework_overhead_s", scenario.framework_overhead_s
            )
        target = self.platform(platform_spec, **kwargs)
        templates = {}
        with profile_phase(self.metrics, "lower"):
            for stream in scenario.streams:
                target.reset_schedule_state()
                templates[stream.name] = target.lower_model(
                    self.model(stream.model), stream=stream.name
                )
            target.reset_schedule_state()
        return scenario, platform_spec, target, templates

    def _schedule_scenario(
        self,
        scenario: ScenarioSpec | dict,
        platform: str | None,
        platform_kwargs: dict | None,
        engine: str | None = None,
        tracer=None,
    ):
        """Lower, instantiate, and schedule one scenario (shared path)."""
        scenario, platform_spec, target, templates = self._lower_scenario(
            scenario, platform, platform_kwargs
        )
        with profile_phase(self.metrics, "instantiate"):
            plan = instantiate_frames(scenario, templates)
        scheduler = TimelineScheduler(
            scenario.policy,
            qos=make_qos(scenario.qos),
            interference=target.interference_matrix(),
            engine=engine,
            tracer=tracer,
        )
        with profile_phase(self.metrics, "schedule"):
            timeline = scheduler.run(plan.tasks)
        return scenario, platform_spec, plan, timeline

    def run_request(
        self,
        request: SimRequest,
        *,
        platform_kwargs: dict | None = None,
    ) -> GemmReport | ModelReport | ScheduleReport | ServingReport:
        """Execute one :class:`SimRequest`, honoring its override fields."""
        if request.kind == "gemm":
            return self.time_gemm(
                request.platform,
                request.gemm,
                tag=request.tag,
                dataflow=request.dataflow,
                scheduler=request.scheduler,
            )
        kwargs = dict(platform_kwargs or {})
        if request.dataflow is not None:
            kwargs["dataflow"] = Dataflow(request.dataflow)
        if request.scheduler is not None:
            kwargs["scheduler"] = request.scheduler
        if request.kind == "serving":
            return self.run_serving(
                request.scenario,
                request.platform,
                tag=request.tag,
                platform_kwargs=kwargs or None,
            )
        if request.kind == "scenario":
            return self.run_scenario(
                request.scenario,
                request.platform,
                tag=request.tag,
                platform_kwargs=kwargs or None,
            )
        return self.run_model(
            request.model,
            request.platform,
            tag=request.tag,
            platform_kwargs=kwargs or None,
        )

    def run_batch(self, requests: Iterable[SimRequest]) -> BatchResult:
        """Execute requests in order; reports come back in the same order.

        The batch shares this session's cache, so repeated shapes across
        requests — the same model on several platforms, sweeps over
        overlapping layer shapes — are simulated once. The returned
        :class:`BatchResult` carries the cache counters observed at the end
        of the batch. A request that fails is re-raised as
        :class:`~repro.errors.BatchRequestError` carrying its batch index
        and tag, with the original exception chained.
        """
        requests = list(requests)
        for request in requests:
            if not isinstance(request, SimRequest):
                raise ConfigError(
                    f"run_batch expects SimRequest items, got {request!r}"
                )
        reports: list[GemmReport | ModelReport] = []
        for index, request in enumerate(requests):
            try:
                reports.append(self.run_request(request))
            except Exception as error:
                raise BatchRequestError.wrap(error, request, index) from error
        return BatchResult(tuple(reports), self.cache.stats())

    def run_sweep(
        self,
        spec,
        *,
        jobs: int = 1,
        store=None,
        resume: bool = False,
    ):
        """Run a :class:`~repro.sweep.grid.SweepSpec` (or pre-expanded
        :class:`~repro.sweep.grid.SweepGrid`) through the sweep engine.

        ``jobs`` > 1 shards the grid across worker processes and merges
        their timing caches back into this session's cache on join; see
        :func:`repro.sweep.run_sweep` for ``store``/``resume`` semantics.
        With ``cluster=`` addresses configured the grid instead shards
        across those servers (``jobs`` is the servers' concern then) and
        their cache deltas merge back here — results are bit-identical
        either way.
        """
        if self.cluster:
            from repro.cluster.dispatch import run_sweep_remote

            result = run_sweep_remote(
                spec,
                self.cluster,
                store=store,
                resume=resume,
                session=self,
                **self._cluster_kwargs(),
            )
        else:
            from repro.sweep.workers import run_sweep

            result = run_sweep(
                spec, jobs=jobs, store=store, resume=resume, session=self
            )
        if self.cache_path is not None:
            # Worker caches were merged on join; persist so the next
            # process starts warm (ROADMAP PR-2 follow-up).
            self.cache.save(self.cache_path)
        return result

    # -- cache persistence / lifecycle -------------------------------------------------
    def save_cache(self) -> int:
        """Write the cache to ``cache_path`` now; returns entries saved."""
        if self.cache_path is None:
            raise ConfigError("session has no cache_path to save to")
        return self.cache.save(self.cache_path)

    def close(self) -> None:
        """Persist the cache (when ``cache_path`` is set); idempotent."""
        if self.cache_path is not None:
            self.cache.save(self.cache_path)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- cache introspection -----------------------------------------------------------
    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss counters of the shared cache (snapshot)."""
        return self.cache.stats()

    @staticmethod
    def _coerce_problem(
        executor: GemmExecutor, problem: GemmProblem | int | Sequence[int]
    ) -> GemmProblem:
        if isinstance(problem, GemmProblem):
            return problem
        if isinstance(problem, int):
            return GemmProblem(
                problem, problem, problem, dtype=executor.default_dtype()
            )
        dims = tuple(problem)
        if len(dims) != 3:
            raise ConfigError(
                f"GEMM shape must be n or (m, n, k), got {problem!r}"
            )
        m, n, k = dims
        return GemmProblem(m, n, k, dtype=executor.default_dtype())

    def __repr__(self) -> str:
        stats = self.cache_stats
        return (
            f"Session(platforms={len(self._platforms)},"
            f" executors={len(self._executors)}, cache_hits={stats.hits},"
            f" cache_misses={stats.misses})"
        )


__all__ = ["Session"]
