"""``repro.api`` — the canonical front door to the simulator.

One substrate, many temporally-selected execution modes (the paper's whole
point) deserves one entry point: a :class:`Session` resolves platforms
(``"gpu-simd"``, ``"gpu-tc"``, ``"sma:2"``, ``"sma:3"``, ``"tpu"``,
``"cpu"``) and zoo models (``"mask_rcnn"``, ``"deeplab"``, ``"vgg_a"``,
...) by string spec, shares one GEMM-timing cache across everything it
builds, and returns typed, JSON-exportable reports::

    from repro.api import Session, SimRequest

    session = Session()
    report = session.run_model("mask_rcnn", "sma:3")
    batch = session.run_batch([
        SimRequest(platform="gpu-tc", model="vgg_a"),
        SimRequest(platform="sma:3", model="vgg_a"),
    ])
    print(batch.to_json(indent=2))
"""

from repro.api.registry import (
    available_models,
    available_platforms,
    build_model,
    build_platform,
    gemm_config,
    parse_spec,
    register_model,
    register_platform,
)
from repro.api.results import (
    BatchResult,
    GemmReport,
    ModelReport,
    OpReport,
    ScenarioSpec,
    ScheduleReport,
    ScheduleSegment,
    ServingFrame,
    ServingReport,
    ServingStreamReport,
    SimRequest,
    StreamReport,
    StreamSpec,
    report_from_dict,
)
from repro.api.session import Session
from repro.catalog import DeviceSpec, InterferenceMatrix
from repro.gemm.cache import (
    CacheEntries,
    CacheStats,
    TimingCache,
    process_cache,
)

# Catalog functions resolve lazily: the loader imports this package's
# registry at wiring time, so an eager import here would hit the loader
# mid-initialization whenever repro.catalog.loader is imported first.
_CATALOG_SYMBOLS = (
    "catalog_fingerprint",
    "device_names",
    "get_device",
    "load_catalog",
    "register_device",
)


def __getattr__(name: str):
    if name in _CATALOG_SYMBOLS:
        from repro.catalog import loader

        return getattr(loader, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BatchResult",
    "CacheEntries",
    "CacheStats",
    "DeviceSpec",
    "GemmReport",
    "InterferenceMatrix",
    "ModelReport",
    "OpReport",
    "ScenarioSpec",
    "ScheduleReport",
    "ScheduleSegment",
    "ServingFrame",
    "ServingReport",
    "ServingStreamReport",
    "Session",
    "SimRequest",
    "StreamReport",
    "StreamSpec",
    "TimingCache",
    "available_models",
    "available_platforms",
    "build_model",
    "build_platform",
    "gemm_config",
    "parse_spec",
    "process_cache",
    "register_model",
    "register_platform",
    "report_from_dict",
    *_CATALOG_SYMBOLS,
]
