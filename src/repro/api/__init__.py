"""``repro.api`` — the canonical front door to the simulator.

One substrate, many temporally-selected execution modes (the paper's whole
point) deserves one entry point: a :class:`Session` resolves platforms
(``"gpu-simd"``, ``"gpu-tc"``, ``"sma:2"``, ``"sma:3"``, ``"tpu"``,
``"cpu"``) and zoo models (``"mask_rcnn"``, ``"deeplab"``, ``"vgg_a"``,
...) by string spec, shares one GEMM-timing cache across everything it
builds, and returns typed, JSON-exportable reports::

    from repro.api import Session, SimRequest

    session = Session()
    report = session.run_model("mask_rcnn", "sma:3")
    batch = session.run_batch([
        SimRequest(platform="gpu-tc", model="vgg_a"),
        SimRequest(platform="sma:3", model="vgg_a"),
    ])
    print(batch.to_json(indent=2))
"""

from repro.api.registry import (
    available_models,
    available_platforms,
    build_model,
    build_platform,
    gemm_config,
    parse_spec,
    register_model,
    register_platform,
)
from repro.api.results import (
    BatchResult,
    GemmReport,
    ModelReport,
    OpReport,
    ScenarioSpec,
    ScheduleReport,
    ScheduleSegment,
    ServingFrame,
    ServingReport,
    ServingStreamReport,
    SimRequest,
    StreamReport,
    StreamSpec,
    report_from_dict,
)
from repro.api.session import Session
from repro.gemm.cache import (
    CacheEntries,
    CacheStats,
    TimingCache,
    process_cache,
)

__all__ = [
    "BatchResult",
    "CacheEntries",
    "CacheStats",
    "GemmReport",
    "ModelReport",
    "OpReport",
    "ScenarioSpec",
    "ScheduleReport",
    "ScheduleSegment",
    "ServingFrame",
    "ServingReport",
    "ServingStreamReport",
    "Session",
    "SimRequest",
    "StreamReport",
    "StreamSpec",
    "TimingCache",
    "available_models",
    "available_platforms",
    "build_model",
    "build_platform",
    "gemm_config",
    "parse_spec",
    "process_cache",
    "register_model",
    "register_platform",
    "report_from_dict",
]
