"""String-addressable registries for platforms and zoo models.

Every simulation consumer used to hand-construct ``GemmExecutor`` /
``Platform`` / ``build_*`` objects. The registries make hardware configs
and workloads declarative instead: a platform is a spec string like
``"gpu-simd"``, ``"sma:3"`` or ``"sma:2,fp32"``, a model is ``"mask_rcnn"``
or ``"deeplab:nocrf"``, and :class:`repro.api.session.Session` resolves
both by name.

Spec grammar::

    NAME[:ARG[,ARG...]]

``NAME`` is case-insensitive; arguments are passed to the registered
factory, which validates them (``"sma:0"`` and ``"sma:banana"`` both raise
:class:`~repro.errors.ConfigError`). New platforms and models self-register
with the :func:`register_platform` / :func:`register_model` decorators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.config import (
    DataType,
    SystemConfig,
    system_gpu_4tc,
    system_gpu_simd,
    system_sma,
)
from repro.dnn.graph import LayerGraph
from repro.dnn.zoo import (
    build_alexnet,
    build_deeplab,
    build_googlenet,
    build_goturn,
    build_mask_rcnn,
    build_vgg_a,
)
from repro.errors import ConfigError
from repro.gemm.cache import TimingCache
from repro.platforms.base import Platform
from repro.platforms.cpu import CpuPlatform
from repro.platforms.gpu_simd import GpuSimdPlatform
from repro.platforms.gpu_sma import GpuSmaPlatform
from repro.platforms.gpu_tc import GpuTcPlatform
from repro.platforms.tpu_platform import TpuPlatform

# ---------------------------------------------------------------------------
# Spec parsing
# ---------------------------------------------------------------------------


def parse_spec(spec: str) -> tuple[str, tuple[str, ...]]:
    """Split ``"name:arg1,arg2"`` into ``("name", ("arg1", "arg2"))``."""
    if not isinstance(spec, str) or not spec.strip():
        raise ConfigError(f"empty spec {spec!r}; expected 'name[:args]'")
    name, sep, rest = spec.strip().partition(":")
    name = name.strip().lower()
    if not name:
        raise ConfigError(f"spec {spec!r} has no name before ':'")
    if not sep:
        return name, ()
    args = tuple(part.strip().lower() for part in rest.split(","))
    if any(not part for part in args):
        raise ConfigError(f"spec {spec!r} has an empty argument")
    return name, args


def _int_arg(label: str, value: str, minimum: int = 1) -> int:
    try:
        parsed = int(value)
    except ValueError:
        raise ConfigError(
            f"{label}: expected an integer, got {value!r}"
        ) from None
    if parsed < minimum:
        raise ConfigError(f"{label}: must be >= {minimum}, got {parsed}")
    return parsed


_DTYPES = {dtype.value: dtype for dtype in DataType}


def _dtype_arg(label: str, value: str) -> DataType:
    dtype = _DTYPES.get(value)
    if dtype is None:
        raise ConfigError(
            f"{label}: unknown dtype {value!r}; one of {sorted(_DTYPES)}"
        )
    return dtype


def _no_args(name: str, args: tuple[str, ...]) -> None:
    if args:
        raise ConfigError(f"{name!r} takes no spec arguments, got {args}")


# ---------------------------------------------------------------------------
# Platform registry
# ---------------------------------------------------------------------------

#: A platform factory: ``factory(*spec_args, cache=..., **kwargs)``.
PlatformFactory = Callable[..., Platform]

#: Maps spec args to the ``(system, backend)`` pair a GemmExecutor needs.
GemmConfigFn = Callable[..., tuple[SystemConfig, str]]


@dataclass(frozen=True)
class PlatformEntry:
    """One registered platform family."""

    name: str
    factory: PlatformFactory
    description: str = ""
    gemm: GemmConfigFn | None = None
    aliases: tuple[str, ...] = ()


_PLATFORMS: dict[str, PlatformEntry] = {}
_PLATFORM_ALIASES: dict[str, str] = {}


def register_platform(
    name: str,
    *,
    description: str = "",
    aliases: tuple[str, ...] = (),
    gemm: GemmConfigFn | None = None,
) -> Callable[[PlatformFactory], PlatformFactory]:
    """Class/function decorator that registers a platform factory.

    ``gemm`` optionally maps the spec arguments to a ``(system, backend)``
    pair so the Session can bench raw GEMMs on the platform's executor.
    """

    def decorator(factory: PlatformFactory) -> PlatformFactory:
        for key in (name, *aliases):
            if key in _PLATFORMS or key in _PLATFORM_ALIASES:
                raise ConfigError(f"platform {key!r} already registered")
        _PLATFORMS[name] = PlatformEntry(
            name=name,
            factory=factory,
            description=description,
            gemm=gemm,
            aliases=tuple(aliases),
        )
        for alias in aliases:
            _PLATFORM_ALIASES[alias] = name
        return factory

    return decorator


def unregister_platform(name: str) -> None:
    """Remove a registered platform (primarily for tests)."""
    entry = _PLATFORMS.pop(name, None)
    if entry is not None:
        for alias in entry.aliases:
            _PLATFORM_ALIASES.pop(alias, None)


def _ensure_catalog() -> None:
    """Install the default device catalog (lazy, idempotent).

    Imported at call time, not module load: the catalog loader imports
    this registry to register its platform factories, so a module-level
    import in either direction would cycle.
    """
    from repro.catalog import loader

    loader.install_default_catalog()


def platform_entry(spec: str) -> tuple[PlatformEntry, tuple[str, ...]]:
    """Resolve a spec string to its registry entry and parsed arguments."""
    name, args = parse_spec(spec)
    resolved = _PLATFORM_ALIASES.get(name, name)
    entry = _PLATFORMS.get(resolved)
    if entry is None:
        # Catalog devices register lazily; retry after installing them.
        _ensure_catalog()
        resolved = _PLATFORM_ALIASES.get(name, name)
        entry = _PLATFORMS.get(resolved)
    if entry is None:
        raise ConfigError(
            f"unknown platform {resolved!r}; available: {sorted(_PLATFORMS)}"
        )
    return entry, args


def build_platform(
    spec: str, *, cache: TimingCache | None = None, **kwargs
) -> Platform:
    """Construct the platform addressed by ``spec``.

    ``cache`` is forwarded so GPU platforms share one GEMM-timing cache;
    remaining keyword arguments (e.g. ``framework_overhead_s``) go to the
    platform constructor.
    """
    entry, args = platform_entry(spec)
    return entry.factory(*args, cache=cache, **kwargs)


def gemm_config(spec: str) -> tuple[SystemConfig, str]:
    """``(system, backend)`` for benching GEMMs on the platform of ``spec``."""
    entry, args = platform_entry(spec)
    if entry.gemm is None:
        raise ConfigError(
            f"platform {entry.name!r} has no GEMM backend to bench"
        )
    return entry.gemm(*args)


def available_platforms() -> dict[str, str]:
    """Registered platform names mapped to their descriptions."""
    _ensure_catalog()
    return {
        name: entry.description for name, entry in sorted(_PLATFORMS.items())
    }


# -- built-in platforms -------------------------------------------------------


def _gemm_gpu_simd(*args: str) -> tuple[SystemConfig, str]:
    _no_args("gpu-simd", args)
    return system_gpu_simd(), "simd"


@register_platform(
    "gpu-simd",
    description="baseline Volta, every op on the FP32 CUDA cores",
    aliases=("simd",),
    gemm=_gemm_gpu_simd,
)
def _build_gpu_simd(*args: str, cache=None, **kwargs) -> Platform:
    _no_args("gpu-simd", args)
    return GpuSimdPlatform(cache=cache, **kwargs)


def _gemm_gpu_tc(*args: str) -> tuple[SystemConfig, str]:
    _no_args("gpu-tc", args)
    return system_gpu_4tc(), "tc"


@register_platform(
    "gpu-tc",
    description="Volta with GEMMs on the 4 TensorCores per SM",
    aliases=("tc", "gpu-4tc"),
    gemm=_gemm_gpu_tc,
)
def _build_gpu_tc(*args: str, cache=None, **kwargs) -> Platform:
    _no_args("gpu-tc", args)
    return GpuTcPlatform(cache=cache, **kwargs)


def _sma_parts(args: tuple[str, ...]) -> tuple[int, DataType]:
    if len(args) > 2:
        raise ConfigError(
            f"'sma' takes at most UNITS,DTYPE arguments, got {args}"
        )
    units = _int_arg("sma units", args[0]) if args else 3
    dtype = (
        _dtype_arg("sma dtype", args[1]) if len(args) > 1 else DataType.FP16
    )
    return units, dtype


@register_platform(
    "sma",
    description="GPU with N SMA units per SM (sma[:UNITS[,DTYPE]])",
    aliases=("gpu-sma",),
    gemm=lambda *args: (system_sma(*_sma_parts(args)), "sma"),
)
def _build_sma(*args: str, cache=None, **kwargs) -> Platform:
    units, dtype = _sma_parts(args)
    return GpuSmaPlatform(
        units, system=system_sma(units, dtype), cache=cache, **kwargs
    )


@register_platform(
    "tpu",
    description="TPU core + host CPU with compiler lowering",
)
def _build_tpu(*args: str, cache=None, **kwargs) -> Platform:
    _no_args("tpu", args)
    del cache  # the TPU array model has no GEMM-timing cache to share
    return TpuPlatform(**kwargs)


@register_platform(
    "cpu",
    description="single general-purpose host core (roofline)",
)
def _build_cpu(*args: str, cache=None, **kwargs) -> Platform:
    _no_args("cpu", args)
    del cache
    return CpuPlatform(**kwargs)


# ---------------------------------------------------------------------------
# Model registry
# ---------------------------------------------------------------------------

#: A model factory: ``factory(*spec_args) -> LayerGraph``.
ModelFactory = Callable[..., LayerGraph]


@dataclass(frozen=True)
class ModelEntry:
    """One registered zoo model."""

    name: str
    factory: ModelFactory
    description: str = ""
    aliases: tuple[str, ...] = ()


_MODELS: dict[str, ModelEntry] = {}
_MODEL_ALIASES: dict[str, str] = {}


def register_model(
    name: str,
    *,
    description: str = "",
    aliases: tuple[str, ...] = (),
) -> Callable[[ModelFactory], ModelFactory]:
    """Decorator that registers a model graph factory under ``name``."""

    def decorator(factory: ModelFactory) -> ModelFactory:
        for key in (name, *aliases):
            if key in _MODELS or key in _MODEL_ALIASES:
                raise ConfigError(f"model {key!r} already registered")
        _MODELS[name] = ModelEntry(
            name=name,
            factory=factory,
            description=description,
            aliases=tuple(aliases),
        )
        for alias in aliases:
            _MODEL_ALIASES[alias] = name
        return factory

    return decorator


def unregister_model(name: str) -> None:
    """Remove a registered model (primarily for tests)."""
    entry = _MODELS.pop(name, None)
    if entry is not None:
        for alias in entry.aliases:
            _MODEL_ALIASES.pop(alias, None)


def build_model(spec: str) -> LayerGraph:
    """Build the layer graph addressed by ``spec`` (e.g. ``"mask_rcnn"``)."""
    name, args = parse_spec(spec)
    name = _MODEL_ALIASES.get(name, name)
    entry = _MODELS.get(name)
    if entry is None:
        raise ConfigError(
            f"unknown model {name!r}; available: {sorted(_MODELS)}"
        )
    return entry.factory(*args)


def available_models() -> dict[str, str]:
    """Registered model names mapped to their descriptions."""
    return {name: entry.description for name, entry in sorted(_MODELS.items())}


# -- built-in models ----------------------------------------------------------


@register_model("alexnet", description="AlexNet (Table II, 5 conv layers)")
def _model_alexnet(*args: str) -> LayerGraph:
    _no_args("alexnet", args)
    return build_alexnet()


@register_model(
    "vgg_a",
    description="VGG-A (Table II, 8 conv layers)",
    aliases=("vgg", "vgg-a"),
)
def _model_vgg_a(*args: str) -> LayerGraph:
    _no_args("vgg_a", args)
    return build_vgg_a()


@register_model("googlenet", description="GoogLeNet (Table II, 57 conv layers)")
def _model_googlenet(*args: str) -> LayerGraph:
    _no_args("googlenet", args)
    return build_googlenet()


@register_model(
    "mask_rcnn",
    description="Mask R-CNN with RoIAlign + NMS (Table II)",
    aliases=("mask-rcnn",),
)
def _model_mask_rcnn(*args: str) -> LayerGraph:
    _no_args("mask_rcnn", args)
    return build_mask_rcnn()


@register_model(
    "deeplab",
    description="DeepLab with ArgMax + CRF tail (deeplab[:nocrf])",
)
def _model_deeplab(*args: str) -> LayerGraph:
    with_crf = True
    for arg in args:
        if arg == "nocrf":
            with_crf = False
        elif arg == "crf":
            with_crf = True
        else:
            raise ConfigError(
                f"deeplab: unknown argument {arg!r}; one of ('crf', 'nocrf')"
            )
    return build_deeplab(with_crf=with_crf)


@register_model("goturn", description="GOTURN tracker (Fig 9 pipeline)")
def _model_goturn(*args: str) -> LayerGraph:
    _no_args("goturn", args)
    return build_goturn()


@register_model(
    "driving_det",
    description="DeepLab on driving frames, no CRF (Fig 9 DET,"
    " driving_det[:INPUT])",
    aliases=("driving-det",),
)
def _model_driving_det(*args: str) -> LayerGraph:
    # Imported lazily: repro.apps pulls in the Session facade, which is
    # still mid-import while this registry module loads.
    from repro.apps.tasks import build_detection_graph

    if len(args) > 1:
        raise ConfigError(
            f"'driving_det' takes at most an INPUT argument, got {args}"
        )
    input_size = (
        _int_arg("driving_det input", args[0], minimum=65) if args else None
    )
    if input_size is None:
        return build_detection_graph()
    return build_detection_graph(input_size)


@register_model(
    "orb_slam",
    description="ORB-SLAM feature frontend + pose solve (Fig 9 LOC)",
    aliases=("orb-slam",),
)
def _model_orb_slam(*args: str) -> LayerGraph:
    from repro.apps.tasks import build_localization_graph

    _no_args("orb_slam", args)
    return build_localization_graph()
