"""Typed request/response objects for the Session facade.

Every Session call returns a frozen report whose fields are plain
primitives, so results are machine-consumable — ``to_dict()`` /
``to_json()`` export losslessly and ``from_dict()`` / ``from_json()``
round-trip to an equal object — rather than only renderable tables.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields

from repro.config import DataType
from repro.errors import ConfigError
from repro.gemm.cache import CacheStats
from repro.gemm.executor import GemmTiming
from repro.gemm.problem import GemmProblem
from repro.common.stats import QuantileSketch, percentile
from repro.platforms.base import ModelRunResult
from repro.schedule.streams import (
    FramePlan,
    FrameRecord,
    ScenarioSpec,
    StreamSpec,
)
from repro.schedule.timeline import PreemptRecord, Timeline, TimelineSegment
from repro.systolic.dataflow import Dataflow

#: The dataflow names a request may carry (`Dataflow` enum values).
DATAFLOW_NAMES = tuple(flow.value for flow in Dataflow)


@dataclass(frozen=True)
class SimRequest:
    """One simulation request for :meth:`repro.api.session.Session.run_batch`.

    Exactly one of ``model`` (a model spec such as ``"mask_rcnn"``),
    ``gemm`` (a :class:`GemmProblem`), or ``scenario`` (a multi-stream
    :class:`~repro.schedule.streams.ScenarioSpec`) must be set;
    ``platform`` is always a platform spec such as ``"sma:3"`` (and binds
    the scenario's platform when the scenario leaves it open). ``tag`` is
    an opaque caller label echoed into the resulting report.

    ``dataflow`` (a :class:`Dataflow` value name such as ``"ws"``/``"sbws"``)
    and ``scheduler`` (``"gto"``/``"lrr"``/``"sma_rr"``) optionally override
    the platform's defaults, which is what lets a sweep grid carry those
    axes; ``None`` keeps the platform default.

    ``catalog`` is the content fingerprint of the device-catalog spec
    behind ``platform`` — filled automatically for catalog platforms
    (``"a100"``, ``"sma@a100:3"``), ``None`` for hand-coded ones. It is
    part of the request's content address, so stored results never leak
    across catalog edits, and the cluster protocol rejects shards whose
    client and server catalogs diverge.
    """

    platform: str
    model: str | None = None
    gemm: GemmProblem | None = None
    scenario: ScenarioSpec | None = None
    tag: str | None = None
    dataflow: str | None = None
    scheduler: str | None = None
    serving: bool = False
    catalog: str | None = None

    def __post_init__(self) -> None:
        workloads = [
            kind
            for kind, value in (
                ("model", self.model),
                ("gemm", self.gemm),
                ("scenario", self.scenario),
            )
            if value is not None
        ]
        if len(workloads) != 1:
            raise ConfigError(
                "SimRequest needs exactly one of model=, gemm=, or"
                f" scenario=, got {workloads or 'none'}"
            )
        if self.serving and self.scenario is None:
            raise ConfigError("serving=True requires a scenario workload")
        if isinstance(self.dataflow, Dataflow):
            object.__setattr__(self, "dataflow", self.dataflow.value)
        if self.dataflow is not None and self.dataflow not in DATAFLOW_NAMES:
            raise ConfigError(
                f"unknown dataflow {self.dataflow!r}; one of {DATAFLOW_NAMES}"
            )
        if self.catalog is None:
            # Deferred import: the catalog loader resolves through the
            # platform registry, which this module must not pull in at
            # load time.
            from repro.catalog import loader

            object.__setattr__(
                self,
                "catalog",
                loader.catalog_fingerprint(self.platform),
            )

    @property
    def kind(self) -> str:
        if self.model is not None:
            return "model"
        if self.gemm is not None:
            return "gemm"
        return "serving" if self.serving else "scenario"

    def to_dict(self) -> dict:
        gemm = None
        if self.gemm is not None:
            gemm = {
                "m": self.gemm.m,
                "n": self.gemm.n,
                "k": self.gemm.k,
                "dtype": self.gemm.dtype.value,
                "alpha": self.gemm.alpha,
                "beta": self.gemm.beta,
            }
        payload = {
            "kind": self.kind,
            "platform": self.platform,
            "model": self.model,
            "gemm": gemm,
            "tag": self.tag,
            "dataflow": self.dataflow,
            "scheduler": self.scheduler,
        }
        # Only scenario requests carry the key: model/gemm dicts (and the
        # content-addressed fingerprints derived from them) stay identical
        # across commits that predate the scenario axis.
        if self.scenario is not None:
            payload["scenario"] = self.scenario.to_dict()
        # Same stability rule: only catalog-backed requests carry the key,
        # so every pre-catalog fingerprint is unchanged.
        if self.catalog is not None:
            payload["catalog"] = self.catalog
        return payload

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "SimRequest":
        gemm = data.get("gemm")
        if gemm is not None:
            gemm = GemmProblem(
                m=gemm["m"],
                n=gemm["n"],
                k=gemm["k"],
                dtype=DataType(gemm.get("dtype", "fp16")),
                alpha=gemm.get("alpha", 1.0),
                beta=gemm.get("beta", 0.0),
            )
        scenario = data.get("scenario")
        if scenario is not None:
            scenario = ScenarioSpec.from_dict(scenario)
        return cls(
            platform=data["platform"],
            model=data.get("model"),
            gemm=gemm,
            scenario=scenario,
            tag=data.get("tag"),
            dataflow=data.get("dataflow"),
            scheduler=data.get("scheduler"),
            serving=data.get("kind") == "serving",
            catalog=data.get("catalog"),
        )

    @classmethod
    def from_json(cls, text: str) -> "SimRequest":
        return cls.from_dict(json.loads(text))


def _check_kind(data: dict, expected: str, cls: type) -> dict:
    kind = data.get("kind", expected)
    if kind != expected:
        raise ConfigError(
            f"{cls.__name__}.from_dict got kind={kind!r}, expected"
            f" {expected!r}"
        )
    return {
        field.name: data[field.name]
        for field in fields(cls)
        if field.name in data
    }


@dataclass(frozen=True)
class GemmReport:
    """Timing of one GEMM on one platform, flattened to primitives."""

    platform: str
    backend: str
    m: int
    n: int
    k: int
    dtype: str
    alpha: float
    beta: float
    seconds: float
    cycles: float
    tb_cycles: float
    tflops: float
    efficiency: float
    sm_efficiency: float
    cached: bool = False
    tag: str | None = None
    dataflow: str | None = None
    scheduler: str | None = None

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3

    @classmethod
    def from_timing(
        cls,
        timing: GemmTiming,
        platform: str,
        cached: bool = False,
        tag: str | None = None,
        dataflow: str | None = None,
        scheduler: str | None = None,
    ) -> "GemmReport":
        problem = timing.problem
        return cls(
            platform=platform,
            backend=timing.backend,
            m=problem.m,
            n=problem.n,
            k=problem.k,
            dtype=problem.dtype.value,
            alpha=problem.alpha,
            beta=problem.beta,
            seconds=timing.seconds,
            cycles=timing.cycles,
            tb_cycles=timing.tb_cycles,
            tflops=timing.tflops,
            efficiency=timing.efficiency,
            sm_efficiency=timing.sm_efficiency,
            cached=cached,
            tag=tag,
            dataflow=dataflow,
            scheduler=scheduler,
        )

    def to_dict(self) -> dict:
        return {"kind": "gemm", **asdict(self)}

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "GemmReport":
        return cls(**_check_kind(data, "gemm", cls))

    @classmethod
    def from_json(cls, text: str) -> "GemmReport":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class OpReport:
    """One operator's stats inside a :class:`ModelReport`.

    ``energy`` is the operator's Joules per Fig 8 structure category
    (``Global``/``Shared``/``Register``/``PE``/``Const``) when the platform
    accounts energy, flattened to a plain dict so reports stay
    JSON-portable.
    """

    op_name: str
    group: str
    mode: str
    seconds: float
    flops: float
    energy: dict[str, float] | None = None


@dataclass(frozen=True)
class ModelReport:
    """Per-op timing of one model on one platform, flattened to primitives."""

    model: str
    platform: str
    ops: tuple[OpReport, ...] = ()
    tag: str | None = None

    @property
    def total_seconds(self) -> float:
        return sum(op.seconds for op in self.ops)

    @property
    def total_ms(self) -> float:
        return self.total_seconds * 1e3

    def grouped_seconds(self) -> dict[str, float]:
        """Seconds per Fig 3 reporting group."""
        groups: dict[str, float] = {}
        for op in self.ops:
            groups[op.group] = groups.get(op.group, 0.0) + op.seconds
        return groups

    @classmethod
    def from_result(
        cls,
        result: ModelRunResult,
        model: str | None = None,
        platform: str | None = None,
        tag: str | None = None,
    ) -> "ModelReport":
        return cls(
            model=model if model is not None else result.model_name,
            platform=(
                platform if platform is not None else result.platform_name
            ),
            ops=tuple(
                OpReport(
                    op_name=stat.op_name,
                    group=stat.group,
                    mode=stat.mode,
                    seconds=stat.seconds,
                    flops=stat.flops,
                    energy=(
                        dict(stat.energy.joules)
                        if stat.energy is not None
                        else None
                    ),
                )
                for stat in result.op_stats
            ),
            tag=tag,
        )

    def to_dict(self) -> dict:
        return {
            "kind": "model",
            "model": self.model,
            "platform": self.platform,
            "tag": self.tag,
            "total_seconds": self.total_seconds,
            "grouped_seconds": self.grouped_seconds(),
            "ops": [asdict(op) for op in self.ops],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "ModelReport":
        kwargs = _check_kind(data, "model", cls)
        kwargs["ops"] = tuple(
            OpReport(**op) for op in data.get("ops", ())
        )
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ModelReport":
        return cls.from_dict(json.loads(text))


#: Schedule reports carry the engine's own segment type — a frozen
#: primitives-only dataclass — so the timeline is exported without a
#: parallel copy that could drift.
ScheduleSegment = TimelineSegment


@dataclass(frozen=True)
class StreamReport:
    """One stream's outcome inside a :class:`ScheduleReport`.

    ``busy_s`` is the stream's full-speed work; ``elapsed_s`` the wall
    time its tasks actually occupied — their ratio (:attr:`stretch`) is
    the co-run contention the stream *experienced*, derived from the
    schedule rather than assumed. Frame latencies are completion minus
    release per executed frame.
    """

    name: str
    model: str
    priority: float
    frames_run: int
    frames_skipped: int
    busy_s: float
    elapsed_s: float
    mean_latency_s: float
    max_latency_s: float
    deadline_misses: int
    frames_dropped: int = 0

    @property
    def stretch(self) -> float:
        if self.busy_s <= 0:
            return 1.0
        return self.elapsed_s / self.busy_s


@dataclass(frozen=True)
class ScheduleReport:
    """The scheduled execution of one multi-stream scenario.

    Everything is flattened to primitives: the timeline segments, the
    per-stream latency/deadline outcomes, and per-resource occupancy
    (fraction of the makespan each resource had work). Round-trips
    losslessly through :meth:`to_dict`/:meth:`from_dict`.
    """

    scenario: str
    platform: str
    policy: str
    frames: int
    makespan_s: float
    streams: tuple[StreamReport, ...] = ()
    segments: tuple[TimelineSegment, ...] = ()
    occupancy: dict[str, float] = field(default_factory=dict)
    mode_switches: int = 0
    switch_overhead_s: float = 0.0
    tag: str | None = None
    #: Kernel-granularity preemption events (deschedules and in-flight
    #: aborts) — empty for every non-preemptive policy/QoS combination.
    preemptions: tuple[PreemptRecord, ...] = ()

    @property
    def avg_frame_latency_s(self) -> float:
        """Window-amortized latency: makespan over simulated frames."""
        return self.makespan_s / self.frames if self.frames else 0.0

    @property
    def avg_frame_latency_ms(self) -> float:
        return self.avg_frame_latency_s * 1e3

    def stream(self, name: str) -> StreamReport:
        for stream in self.streams:
            if stream.name == name:
                return stream
        raise ConfigError(
            f"schedule report has no stream {name!r}; streams:"
            f" {[stream.name for stream in self.streams]}"
        )

    @classmethod
    def from_timeline(
        cls,
        spec: ScenarioSpec,
        platform: str,
        timeline: Timeline,
        plan: FramePlan,
        tag: str | None = None,
    ) -> "ScheduleReport":
        """Assemble the report from an executed scenario timeline."""
        by_stream: dict[str, list] = {}
        for segment in timeline.segments:
            by_stream.setdefault(segment.stream, []).append(segment)
        records = plan.frame_records(timeline)
        streams = []
        for stream_spec in spec.streams:
            segments = by_stream.get(stream_spec.name, [])
            frames = [
                record
                for record in records.get(stream_spec.name, [])
                if not record.dropped
            ]
            frame_latencies = [record.latency_s for record in frames]
            streams.append(
                StreamReport(
                    name=stream_spec.name,
                    model=stream_spec.model,
                    priority=stream_spec.priority,
                    frames_run=len(frames),
                    frames_skipped=plan.skipped.get(stream_spec.name, 0),
                    busy_s=sum(segment.seconds for segment in segments),
                    elapsed_s=sum(
                        segment.end_s - segment.start_s for segment in segments
                    ),
                    mean_latency_s=(
                        sum(frame_latencies) / len(frame_latencies)
                        if frame_latencies
                        else 0.0
                    ),
                    max_latency_s=(
                        max(frame_latencies) if frame_latencies else 0.0
                    ),
                    deadline_misses=sum(
                        1 for record in frames if record.missed
                    ),
                    frames_dropped=sum(
                        1
                        for record in records.get(stream_spec.name, [])
                        if record.dropped
                    ),
                )
            )
        return cls(
            scenario=spec.name,
            platform=platform,
            policy=spec.policy,
            frames=spec.frames,
            makespan_s=timeline.makespan_s,
            streams=tuple(streams),
            segments=timeline.segments,
            occupancy=timeline.occupancy(),
            mode_switches=timeline.mode_switches,
            switch_overhead_s=timeline.switch_overhead_s,
            tag=tag,
            preemptions=timeline.preemptions,
        )

    def to_dict(self) -> dict:
        return {
            "kind": "schedule",
            "scenario": self.scenario,
            "platform": self.platform,
            "policy": self.policy,
            "frames": self.frames,
            "makespan_s": self.makespan_s,
            "avg_frame_latency_s": self.avg_frame_latency_s,
            "streams": [asdict(stream) for stream in self.streams],
            "segments": [asdict(segment) for segment in self.segments],
            "occupancy": dict(self.occupancy),
            "mode_switches": self.mode_switches,
            "switch_overhead_s": self.switch_overhead_s,
            "tag": self.tag,
            # Emitted only when a preemptive policy/QoS actually fired, so
            # every pre-preemption report (and store fingerprint) keeps
            # its byte format.
            **(
                {"preemptions": [asdict(record) for record in self.preemptions]}
                if self.preemptions
                else {}
            ),
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "ScheduleReport":
        kwargs = _check_kind(data, "schedule", cls)
        kwargs["streams"] = tuple(
            StreamReport(**stream) for stream in data.get("streams", ())
        )
        kwargs["segments"] = tuple(
            TimelineSegment(**segment) for segment in data.get("segments", ())
        )
        kwargs["occupancy"] = dict(data.get("occupancy", {}))
        kwargs["preemptions"] = tuple(
            PreemptRecord(**record) for record in data.get("preemptions", ())
        )
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ScheduleReport":
        return cls.from_dict(json.loads(text))


#: Serving frame outcomes reuse the schedule package's own record type —
#: a frozen primitives-only dataclass — so the per-frame data is exported
#: without a parallel copy that could drift.
ServingFrame = FrameRecord


@dataclass(frozen=True)
class ServingStreamReport:
    """One stream's open-loop outcome inside a :class:`ServingReport`.

    ``offered`` counts the frames the arrival process released (after
    frame skipping); they partition into ``completed`` and ``dropped``.
    Latency statistics are nearest-rank percentiles over the completed
    frames only, and ``goodput_fps`` is deadline-met completions per
    second of makespan — the throughput the SLO actually credits.

    Streaming runs (``Session.run_serving_stream`` without
    ``keep_records``) carry no per-frame tuple; instead ``sketches``
    holds the stream's P² latency sketch state
    (:meth:`repro.common.stats.QuantileSketch.to_dict`) and the
    percentile fields are its estimates. The key is emitted only when
    set, so materialized reports stay byte-identical.
    """

    name: str
    model: str
    priority: float
    offered: int
    completed: int
    dropped: int
    missed: int
    skipped: int
    mean_latency_s: float
    max_latency_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    goodput_fps: float
    frames: tuple[ServingFrame, ...] = ()
    sketches: dict | None = None
    #: Frames cancelled in-flight by a preemptive QoS policy (a subset of
    #: ``dropped``); 0 for every non-preemptive policy.
    preempted: int = 0

    @property
    def drop_fraction(self) -> float:
        return self.dropped / self.offered if self.offered else 0.0


@dataclass(frozen=True)
class ServingReport:
    """The open-loop serving outcome of one scenario on one platform.

    Everything is flattened to primitives — per-stream percentiles and
    goodput plus the per-frame outcome records — and round-trips
    losslessly through :meth:`to_dict`/:meth:`from_dict`, so serving runs
    ride the sweep engine and result store like every other workload.
    ``qos`` echoes the scenario's admission-control spec (its dict form).
    """

    scenario: str
    platform: str
    policy: str
    frames: int
    makespan_s: float
    streams: tuple[ServingStreamReport, ...] = ()
    occupancy: dict[str, float] = field(default_factory=dict)
    mode_switches: int = 0
    switch_overhead_s: float = 0.0
    qos: dict | None = None
    tag: str | None = None
    #: Cross-stream latency sketch state for streaming runs (None for
    #: materialized runs — the aggregate percentiles then come from the
    #: per-frame records).
    sketches: dict | None = None

    def stream(self, name: str) -> ServingStreamReport:
        for stream in self.streams:
            if stream.name == name:
                return stream
        raise ConfigError(
            f"serving report has no stream {name!r}; streams:"
            f" {[stream.name for stream in self.streams]}"
        )

    # -- aggregates (derived, not stored) ----------------------------------------------
    @property
    def offered(self) -> int:
        return sum(stream.offered for stream in self.streams)

    @property
    def completed(self) -> int:
        return sum(stream.completed for stream in self.streams)

    @property
    def dropped(self) -> int:
        return sum(stream.dropped for stream in self.streams)

    @property
    def missed(self) -> int:
        return sum(stream.missed for stream in self.streams)

    @property
    def preempted(self) -> int:
        return sum(stream.preempted for stream in self.streams)

    @property
    def drop_fraction(self) -> float:
        return self.dropped / self.offered if self.offered else 0.0

    @property
    def goodput_fps(self) -> float:
        return sum(stream.goodput_fps for stream in self.streams)

    def completed_latencies(self) -> list[float]:
        """Every completed frame's latency, across all streams."""
        return [
            frame.latency_s
            for stream in self.streams
            for frame in stream.frames
            if not frame.dropped
        ]

    def latency_percentile(self, q: float) -> float:
        """Nearest-rank latency percentile across every completed frame.

        Sketch-backed (streaming) reports have no per-frame records; the
        value is then the cross-stream P² estimate, defined only for the
        tracked quantiles (50/95/99).
        """
        if self.sketches is not None:
            return QuantileSketch.from_dict(self.sketches).quantile(q)
        return percentile(self.completed_latencies(), q)

    @property
    def p50_s(self) -> float:
        return self.latency_percentile(50)

    @property
    def p95_s(self) -> float:
        return self.latency_percentile(95)

    @property
    def p99_s(self) -> float:
        return self.latency_percentile(99)

    @property
    def avg_frame_latency_s(self) -> float:
        """Window-amortized latency (mirrors :class:`ScheduleReport`)."""
        return self.makespan_s / self.frames if self.frames else 0.0

    @property
    def avg_frame_latency_ms(self) -> float:
        return self.avg_frame_latency_s * 1e3

    @classmethod
    def from_timeline(
        cls,
        spec: ScenarioSpec,
        platform: str,
        timeline: Timeline,
        plan: FramePlan,
        tag: str | None = None,
    ) -> "ServingReport":
        """Assemble the report from an executed scenario timeline."""
        records = plan.frame_records(timeline)
        aborted = {
            (record.stream, record.frame)
            for record in timeline.preemptions
            if record.action == "abort"
        }
        streams = []
        for stream_spec in spec.streams:
            frames = tuple(records.get(stream_spec.name, ()))
            done = [frame for frame in frames if not frame.dropped]
            latencies = [frame.latency_s for frame in done]
            met = sum(1 for frame in done if not frame.missed)
            streams.append(
                ServingStreamReport(
                    name=stream_spec.name,
                    model=stream_spec.model,
                    priority=stream_spec.priority,
                    offered=len(frames),
                    completed=len(done),
                    dropped=len(frames) - len(done),
                    missed=sum(1 for frame in done if frame.missed),
                    skipped=plan.skipped.get(stream_spec.name, 0),
                    mean_latency_s=(
                        sum(latencies) / len(latencies) if latencies else 0.0
                    ),
                    max_latency_s=max(latencies) if latencies else 0.0,
                    p50_s=percentile(latencies, 50),
                    p95_s=percentile(latencies, 95),
                    p99_s=percentile(latencies, 99),
                    goodput_fps=(
                        met / timeline.makespan_s
                        if timeline.makespan_s > 0
                        else 0.0
                    ),
                    frames=frames,
                    preempted=sum(
                        1
                        for frame in frames
                        if (stream_spec.name, frame.frame) in aborted
                    ),
                )
            )
        return cls(
            scenario=spec.name,
            platform=platform,
            policy=spec.policy,
            frames=spec.frames,
            makespan_s=timeline.makespan_s,
            streams=tuple(streams),
            occupancy=timeline.occupancy(),
            mode_switches=timeline.mode_switches,
            switch_overhead_s=timeline.switch_overhead_s,
            qos=spec.qos.to_dict() if spec.qos is not None else None,
            tag=tag,
        )

    def to_dict(self) -> dict:
        return {
            "kind": "serving",
            "scenario": self.scenario,
            "platform": self.platform,
            "policy": self.policy,
            "frames": self.frames,
            "makespan_s": self.makespan_s,
            "offered": self.offered,
            "completed": self.completed,
            "dropped": self.dropped,
            "missed": self.missed,
            "goodput_fps": self.goodput_fps,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
            "streams": [self._stream_dict(stream) for stream in self.streams],
            "occupancy": dict(self.occupancy),
            "mode_switches": self.mode_switches,
            "switch_overhead_s": self.switch_overhead_s,
            "qos": dict(self.qos) if self.qos is not None else None,
            "tag": self.tag,
            # Emitted only when set so materialized serving reports (and
            # every store fingerprint derived from them) keep their
            # pre-streaming byte format.
            **({"sketches": self.sketches} if self.sketches is not None else {}),
            # Same stability rule for the preemption aggregate.
            **({"preempted": self.preempted} if self.preempted else {}),
        }

    @staticmethod
    def _stream_dict(stream: ServingStreamReport) -> dict:
        payload = asdict(stream)
        if payload.get("sketches") is None:
            del payload["sketches"]
        if not payload.get("preempted"):
            del payload["preempted"]
        return payload

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "ServingReport":
        kwargs = _check_kind(data, "serving", cls)
        kwargs["streams"] = tuple(
            ServingStreamReport(
                **{
                    **stream,
                    "frames": tuple(
                        ServingFrame(**frame)
                        for frame in stream.get("frames", ())
                    ),
                }
            )
            for stream in data.get("streams", ())
        )
        kwargs["occupancy"] = dict(data.get("occupancy", {}))
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ServingReport":
        return cls.from_dict(json.loads(text))


def report_from_dict(
    data: dict,
) -> "GemmReport | ModelReport | ScheduleReport | ServingReport":
    """Reconstruct any report type from its ``to_dict()`` form."""
    kind = data.get("kind")
    if kind == "gemm":
        return GemmReport.from_dict(data)
    if kind == "model":
        return ModelReport.from_dict(data)
    if kind == "schedule":
        return ScheduleReport.from_dict(data)
    if kind == "serving":
        return ServingReport.from_dict(data)
    if kind == "fuzz":
        # Deferred: repro.fuzz sits above the API layer.
        from repro.fuzz.campaign import FuzzReport

        return FuzzReport.from_dict(data)
    raise ConfigError(f"unknown report kind {kind!r}")


@dataclass(frozen=True)
class BatchResult:
    """Ordered reports of one :meth:`Session.run_batch` plus cache stats."""

    reports: tuple["GemmReport | ModelReport", ...]
    cache_stats: CacheStats

    def __len__(self) -> int:
        return len(self.reports)

    def __iter__(self):
        return iter(self.reports)

    def to_dict(self) -> dict:
        return {
            "reports": [report.to_dict() for report in self.reports],
            "cache": self.cache_stats.to_dict(),
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)
