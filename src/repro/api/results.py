"""Typed request/response objects for the Session facade.

Every Session call returns a frozen report whose fields are plain
primitives, so results are machine-consumable — ``to_dict()`` /
``to_json()`` export losslessly and ``from_dict()`` / ``from_json()``
round-trip to an equal object — rather than only renderable tables.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields

from repro.errors import ConfigError
from repro.gemm.cache import CacheStats
from repro.gemm.executor import GemmTiming
from repro.gemm.problem import GemmProblem
from repro.platforms.base import ModelRunResult


@dataclass(frozen=True)
class SimRequest:
    """One simulation request for :meth:`repro.api.session.Session.run_batch`.

    Exactly one of ``model`` (a model spec such as ``"mask_rcnn"``) or
    ``gemm`` (a :class:`GemmProblem`) must be set; ``platform`` is always a
    platform spec such as ``"sma:3"``. ``tag`` is an opaque caller label
    echoed into the resulting report.
    """

    platform: str
    model: str | None = None
    gemm: GemmProblem | None = None
    tag: str | None = None

    def __post_init__(self) -> None:
        if (self.model is None) == (self.gemm is None):
            raise ConfigError(
                "SimRequest needs exactly one of model= or gemm=, got"
                f" model={self.model!r} gemm={self.gemm!r}"
            )

    @property
    def kind(self) -> str:
        return "model" if self.model is not None else "gemm"


def _check_kind(data: dict, expected: str, cls: type) -> dict:
    kind = data.get("kind", expected)
    if kind != expected:
        raise ConfigError(
            f"{cls.__name__}.from_dict got kind={kind!r}, expected"
            f" {expected!r}"
        )
    return {
        field.name: data[field.name]
        for field in fields(cls)
        if field.name in data
    }


@dataclass(frozen=True)
class GemmReport:
    """Timing of one GEMM on one platform, flattened to primitives."""

    platform: str
    backend: str
    m: int
    n: int
    k: int
    dtype: str
    alpha: float
    beta: float
    seconds: float
    cycles: float
    tb_cycles: float
    tflops: float
    efficiency: float
    sm_efficiency: float
    cached: bool = False
    tag: str | None = None

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3

    @classmethod
    def from_timing(
        cls,
        timing: GemmTiming,
        platform: str,
        cached: bool = False,
        tag: str | None = None,
    ) -> "GemmReport":
        problem = timing.problem
        return cls(
            platform=platform,
            backend=timing.backend,
            m=problem.m,
            n=problem.n,
            k=problem.k,
            dtype=problem.dtype.value,
            alpha=problem.alpha,
            beta=problem.beta,
            seconds=timing.seconds,
            cycles=timing.cycles,
            tb_cycles=timing.tb_cycles,
            tflops=timing.tflops,
            efficiency=timing.efficiency,
            sm_efficiency=timing.sm_efficiency,
            cached=cached,
            tag=tag,
        )

    def to_dict(self) -> dict:
        return {"kind": "gemm", **asdict(self)}

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "GemmReport":
        return cls(**_check_kind(data, "gemm", cls))

    @classmethod
    def from_json(cls, text: str) -> "GemmReport":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class OpReport:
    """One operator's stats inside a :class:`ModelReport`."""

    op_name: str
    group: str
    mode: str
    seconds: float
    flops: float


@dataclass(frozen=True)
class ModelReport:
    """Per-op timing of one model on one platform, flattened to primitives."""

    model: str
    platform: str
    ops: tuple[OpReport, ...] = ()
    tag: str | None = None

    @property
    def total_seconds(self) -> float:
        return sum(op.seconds for op in self.ops)

    @property
    def total_ms(self) -> float:
        return self.total_seconds * 1e3

    def grouped_seconds(self) -> dict[str, float]:
        """Seconds per Fig 3 reporting group."""
        groups: dict[str, float] = {}
        for op in self.ops:
            groups[op.group] = groups.get(op.group, 0.0) + op.seconds
        return groups

    @classmethod
    def from_result(
        cls,
        result: ModelRunResult,
        model: str | None = None,
        platform: str | None = None,
        tag: str | None = None,
    ) -> "ModelReport":
        return cls(
            model=model if model is not None else result.model_name,
            platform=(
                platform if platform is not None else result.platform_name
            ),
            ops=tuple(
                OpReport(
                    op_name=stat.op_name,
                    group=stat.group,
                    mode=stat.mode,
                    seconds=stat.seconds,
                    flops=stat.flops,
                )
                for stat in result.op_stats
            ),
            tag=tag,
        )

    def to_dict(self) -> dict:
        return {
            "kind": "model",
            "model": self.model,
            "platform": self.platform,
            "tag": self.tag,
            "total_seconds": self.total_seconds,
            "grouped_seconds": self.grouped_seconds(),
            "ops": [asdict(op) for op in self.ops],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "ModelReport":
        kwargs = _check_kind(data, "model", cls)
        kwargs["ops"] = tuple(
            OpReport(**op) for op in data.get("ops", ())
        )
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ModelReport":
        return cls.from_dict(json.loads(text))


def report_from_dict(data: dict) -> "GemmReport | ModelReport":
    """Reconstruct either report type from its ``to_dict()`` form."""
    kind = data.get("kind")
    if kind == "gemm":
        return GemmReport.from_dict(data)
    if kind == "model":
        return ModelReport.from_dict(data)
    raise ConfigError(f"unknown report kind {kind!r}")


@dataclass(frozen=True)
class BatchResult:
    """Ordered reports of one :meth:`Session.run_batch` plus cache stats."""

    reports: tuple["GemmReport | ModelReport", ...]
    cache_stats: CacheStats

    def __len__(self) -> int:
        return len(self.reports)

    def __iter__(self):
        return iter(self.reports)

    def to_dict(self) -> dict:
        return {
            "reports": [report.to_dict() for report in self.reports],
            "cache": self.cache_stats.to_dict(),
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)
