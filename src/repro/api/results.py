"""Typed request/response objects for the Session facade.

Every Session call returns a frozen report whose fields are plain
primitives, so results are machine-consumable — ``to_dict()`` /
``to_json()`` export losslessly and ``from_dict()`` / ``from_json()``
round-trip to an equal object — rather than only renderable tables.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields

from repro.config import DataType
from repro.errors import ConfigError
from repro.gemm.cache import CacheStats
from repro.gemm.executor import GemmTiming
from repro.gemm.problem import GemmProblem
from repro.platforms.base import ModelRunResult
from repro.schedule.streams import FramePlan, ScenarioSpec, StreamSpec
from repro.schedule.timeline import Timeline, TimelineSegment
from repro.systolic.dataflow import Dataflow

#: The dataflow names a request may carry (`Dataflow` enum values).
DATAFLOW_NAMES = tuple(flow.value for flow in Dataflow)


@dataclass(frozen=True)
class SimRequest:
    """One simulation request for :meth:`repro.api.session.Session.run_batch`.

    Exactly one of ``model`` (a model spec such as ``"mask_rcnn"``),
    ``gemm`` (a :class:`GemmProblem`), or ``scenario`` (a multi-stream
    :class:`~repro.schedule.streams.ScenarioSpec`) must be set;
    ``platform`` is always a platform spec such as ``"sma:3"`` (and binds
    the scenario's platform when the scenario leaves it open). ``tag`` is
    an opaque caller label echoed into the resulting report.

    ``dataflow`` (a :class:`Dataflow` value name such as ``"ws"``/``"sbws"``)
    and ``scheduler`` (``"gto"``/``"lrr"``/``"sma_rr"``) optionally override
    the platform's defaults, which is what lets a sweep grid carry those
    axes; ``None`` keeps the platform default.
    """

    platform: str
    model: str | None = None
    gemm: GemmProblem | None = None
    scenario: ScenarioSpec | None = None
    tag: str | None = None
    dataflow: str | None = None
    scheduler: str | None = None

    def __post_init__(self) -> None:
        workloads = [
            kind
            for kind, value in (
                ("model", self.model),
                ("gemm", self.gemm),
                ("scenario", self.scenario),
            )
            if value is not None
        ]
        if len(workloads) != 1:
            raise ConfigError(
                "SimRequest needs exactly one of model=, gemm=, or"
                f" scenario=, got {workloads or 'none'}"
            )
        if isinstance(self.dataflow, Dataflow):
            object.__setattr__(self, "dataflow", self.dataflow.value)
        if self.dataflow is not None and self.dataflow not in DATAFLOW_NAMES:
            raise ConfigError(
                f"unknown dataflow {self.dataflow!r}; one of {DATAFLOW_NAMES}"
            )

    @property
    def kind(self) -> str:
        if self.model is not None:
            return "model"
        if self.gemm is not None:
            return "gemm"
        return "scenario"

    def to_dict(self) -> dict:
        gemm = None
        if self.gemm is not None:
            gemm = {
                "m": self.gemm.m,
                "n": self.gemm.n,
                "k": self.gemm.k,
                "dtype": self.gemm.dtype.value,
                "alpha": self.gemm.alpha,
                "beta": self.gemm.beta,
            }
        payload = {
            "kind": self.kind,
            "platform": self.platform,
            "model": self.model,
            "gemm": gemm,
            "tag": self.tag,
            "dataflow": self.dataflow,
            "scheduler": self.scheduler,
        }
        # Only scenario requests carry the key: model/gemm dicts (and the
        # content-addressed fingerprints derived from them) stay identical
        # across commits that predate the scenario axis.
        if self.scenario is not None:
            payload["scenario"] = self.scenario.to_dict()
        return payload

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "SimRequest":
        gemm = data.get("gemm")
        if gemm is not None:
            gemm = GemmProblem(
                m=gemm["m"],
                n=gemm["n"],
                k=gemm["k"],
                dtype=DataType(gemm.get("dtype", "fp16")),
                alpha=gemm.get("alpha", 1.0),
                beta=gemm.get("beta", 0.0),
            )
        scenario = data.get("scenario")
        if scenario is not None:
            scenario = ScenarioSpec.from_dict(scenario)
        return cls(
            platform=data["platform"],
            model=data.get("model"),
            gemm=gemm,
            scenario=scenario,
            tag=data.get("tag"),
            dataflow=data.get("dataflow"),
            scheduler=data.get("scheduler"),
        )

    @classmethod
    def from_json(cls, text: str) -> "SimRequest":
        return cls.from_dict(json.loads(text))


def _check_kind(data: dict, expected: str, cls: type) -> dict:
    kind = data.get("kind", expected)
    if kind != expected:
        raise ConfigError(
            f"{cls.__name__}.from_dict got kind={kind!r}, expected"
            f" {expected!r}"
        )
    return {
        field.name: data[field.name]
        for field in fields(cls)
        if field.name in data
    }


@dataclass(frozen=True)
class GemmReport:
    """Timing of one GEMM on one platform, flattened to primitives."""

    platform: str
    backend: str
    m: int
    n: int
    k: int
    dtype: str
    alpha: float
    beta: float
    seconds: float
    cycles: float
    tb_cycles: float
    tflops: float
    efficiency: float
    sm_efficiency: float
    cached: bool = False
    tag: str | None = None
    dataflow: str | None = None
    scheduler: str | None = None

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3

    @classmethod
    def from_timing(
        cls,
        timing: GemmTiming,
        platform: str,
        cached: bool = False,
        tag: str | None = None,
        dataflow: str | None = None,
        scheduler: str | None = None,
    ) -> "GemmReport":
        problem = timing.problem
        return cls(
            platform=platform,
            backend=timing.backend,
            m=problem.m,
            n=problem.n,
            k=problem.k,
            dtype=problem.dtype.value,
            alpha=problem.alpha,
            beta=problem.beta,
            seconds=timing.seconds,
            cycles=timing.cycles,
            tb_cycles=timing.tb_cycles,
            tflops=timing.tflops,
            efficiency=timing.efficiency,
            sm_efficiency=timing.sm_efficiency,
            cached=cached,
            tag=tag,
            dataflow=dataflow,
            scheduler=scheduler,
        )

    def to_dict(self) -> dict:
        return {"kind": "gemm", **asdict(self)}

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "GemmReport":
        return cls(**_check_kind(data, "gemm", cls))

    @classmethod
    def from_json(cls, text: str) -> "GemmReport":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class OpReport:
    """One operator's stats inside a :class:`ModelReport`.

    ``energy`` is the operator's Joules per Fig 8 structure category
    (``Global``/``Shared``/``Register``/``PE``/``Const``) when the platform
    accounts energy, flattened to a plain dict so reports stay
    JSON-portable.
    """

    op_name: str
    group: str
    mode: str
    seconds: float
    flops: float
    energy: dict[str, float] | None = None


@dataclass(frozen=True)
class ModelReport:
    """Per-op timing of one model on one platform, flattened to primitives."""

    model: str
    platform: str
    ops: tuple[OpReport, ...] = ()
    tag: str | None = None

    @property
    def total_seconds(self) -> float:
        return sum(op.seconds for op in self.ops)

    @property
    def total_ms(self) -> float:
        return self.total_seconds * 1e3

    def grouped_seconds(self) -> dict[str, float]:
        """Seconds per Fig 3 reporting group."""
        groups: dict[str, float] = {}
        for op in self.ops:
            groups[op.group] = groups.get(op.group, 0.0) + op.seconds
        return groups

    @classmethod
    def from_result(
        cls,
        result: ModelRunResult,
        model: str | None = None,
        platform: str | None = None,
        tag: str | None = None,
    ) -> "ModelReport":
        return cls(
            model=model if model is not None else result.model_name,
            platform=(
                platform if platform is not None else result.platform_name
            ),
            ops=tuple(
                OpReport(
                    op_name=stat.op_name,
                    group=stat.group,
                    mode=stat.mode,
                    seconds=stat.seconds,
                    flops=stat.flops,
                    energy=(
                        dict(stat.energy.joules)
                        if stat.energy is not None
                        else None
                    ),
                )
                for stat in result.op_stats
            ),
            tag=tag,
        )

    def to_dict(self) -> dict:
        return {
            "kind": "model",
            "model": self.model,
            "platform": self.platform,
            "tag": self.tag,
            "total_seconds": self.total_seconds,
            "grouped_seconds": self.grouped_seconds(),
            "ops": [asdict(op) for op in self.ops],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "ModelReport":
        kwargs = _check_kind(data, "model", cls)
        kwargs["ops"] = tuple(
            OpReport(**op) for op in data.get("ops", ())
        )
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ModelReport":
        return cls.from_dict(json.loads(text))


#: Schedule reports carry the engine's own segment type — a frozen
#: primitives-only dataclass — so the timeline is exported without a
#: parallel copy that could drift.
ScheduleSegment = TimelineSegment


@dataclass(frozen=True)
class StreamReport:
    """One stream's outcome inside a :class:`ScheduleReport`.

    ``busy_s`` is the stream's full-speed work; ``elapsed_s`` the wall
    time its tasks actually occupied — their ratio (:attr:`stretch`) is
    the co-run contention the stream *experienced*, derived from the
    schedule rather than assumed. Frame latencies are completion minus
    release per executed frame.
    """

    name: str
    model: str
    priority: float
    frames_run: int
    frames_skipped: int
    busy_s: float
    elapsed_s: float
    mean_latency_s: float
    max_latency_s: float
    deadline_misses: int

    @property
    def stretch(self) -> float:
        if self.busy_s <= 0:
            return 1.0
        return self.elapsed_s / self.busy_s


@dataclass(frozen=True)
class ScheduleReport:
    """The scheduled execution of one multi-stream scenario.

    Everything is flattened to primitives: the timeline segments, the
    per-stream latency/deadline outcomes, and per-resource occupancy
    (fraction of the makespan each resource had work). Round-trips
    losslessly through :meth:`to_dict`/:meth:`from_dict`.
    """

    scenario: str
    platform: str
    policy: str
    frames: int
    makespan_s: float
    streams: tuple[StreamReport, ...] = ()
    segments: tuple[TimelineSegment, ...] = ()
    occupancy: dict[str, float] = field(default_factory=dict)
    mode_switches: int = 0
    switch_overhead_s: float = 0.0
    tag: str | None = None

    @property
    def avg_frame_latency_s(self) -> float:
        """Window-amortized latency: makespan over simulated frames."""
        return self.makespan_s / self.frames if self.frames else 0.0

    @property
    def avg_frame_latency_ms(self) -> float:
        return self.avg_frame_latency_s * 1e3

    def stream(self, name: str) -> StreamReport:
        for stream in self.streams:
            if stream.name == name:
                return stream
        raise ConfigError(
            f"schedule report has no stream {name!r}; streams:"
            f" {[stream.name for stream in self.streams]}"
        )

    @classmethod
    def from_timeline(
        cls,
        spec: ScenarioSpec,
        platform: str,
        timeline: Timeline,
        plan: FramePlan,
        tag: str | None = None,
    ) -> "ScheduleReport":
        """Assemble the report from an executed scenario timeline."""
        by_stream: dict[str, list] = {}
        for segment in timeline.segments:
            by_stream.setdefault(segment.stream, []).append(segment)
        latencies = plan.frame_latencies(timeline)
        streams = []
        for stream_spec in spec.streams:
            segments = by_stream.get(stream_spec.name, [])
            frames = latencies.get(stream_spec.name, [])
            frame_latencies = [latency for *_ignored, latency, _miss in frames]
            streams.append(
                StreamReport(
                    name=stream_spec.name,
                    model=stream_spec.model,
                    priority=stream_spec.priority,
                    frames_run=len(frames),
                    frames_skipped=plan.skipped.get(stream_spec.name, 0),
                    busy_s=sum(segment.seconds for segment in segments),
                    elapsed_s=sum(
                        segment.end_s - segment.start_s for segment in segments
                    ),
                    mean_latency_s=(
                        sum(frame_latencies) / len(frame_latencies)
                        if frame_latencies
                        else 0.0
                    ),
                    max_latency_s=(
                        max(frame_latencies) if frame_latencies else 0.0
                    ),
                    deadline_misses=sum(
                        1 for *_ignored, miss in frames if miss
                    ),
                )
            )
        return cls(
            scenario=spec.name,
            platform=platform,
            policy=spec.policy,
            frames=spec.frames,
            makespan_s=timeline.makespan_s,
            streams=tuple(streams),
            segments=timeline.segments,
            occupancy=timeline.occupancy(),
            mode_switches=timeline.mode_switches,
            switch_overhead_s=timeline.switch_overhead_s,
            tag=tag,
        )

    def to_dict(self) -> dict:
        return {
            "kind": "schedule",
            "scenario": self.scenario,
            "platform": self.platform,
            "policy": self.policy,
            "frames": self.frames,
            "makespan_s": self.makespan_s,
            "avg_frame_latency_s": self.avg_frame_latency_s,
            "streams": [asdict(stream) for stream in self.streams],
            "segments": [asdict(segment) for segment in self.segments],
            "occupancy": dict(self.occupancy),
            "mode_switches": self.mode_switches,
            "switch_overhead_s": self.switch_overhead_s,
            "tag": self.tag,
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "ScheduleReport":
        kwargs = _check_kind(data, "schedule", cls)
        kwargs["streams"] = tuple(
            StreamReport(**stream) for stream in data.get("streams", ())
        )
        kwargs["segments"] = tuple(
            TimelineSegment(**segment) for segment in data.get("segments", ())
        )
        kwargs["occupancy"] = dict(data.get("occupancy", {}))
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ScheduleReport":
        return cls.from_dict(json.loads(text))


def report_from_dict(data: dict) -> "GemmReport | ModelReport | ScheduleReport":
    """Reconstruct any report type from its ``to_dict()`` form."""
    kind = data.get("kind")
    if kind == "gemm":
        return GemmReport.from_dict(data)
    if kind == "model":
        return ModelReport.from_dict(data)
    if kind == "schedule":
        return ScheduleReport.from_dict(data)
    raise ConfigError(f"unknown report kind {kind!r}")


@dataclass(frozen=True)
class BatchResult:
    """Ordered reports of one :meth:`Session.run_batch` plus cache stats."""

    reports: tuple["GemmReport | ModelReport", ...]
    cache_stats: CacheStats

    def __len__(self) -> int:
        return len(self.reports)

    def __iter__(self):
        return iter(self.reports)

    def to_dict(self) -> dict:
        return {
            "reports": [report.to_dict() for report in self.reports],
            "cache": self.cache_stats.to_dict(),
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)
