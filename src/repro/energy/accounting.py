"""Event-count -> energy accounting (the Fig 8 bottom breakdown).

Takes the counter bags produced by the SM pipeline / systolic controller /
launch composer and converts them into joules bucketed by structure:
Global (DRAM + L2), Shared, Register, PE (MACs + instruction control),
Const. The SMA's energy win in Fig 8 comes out of exactly these buckets:
systolic reuse removes register-file and shared-memory accesses per MAC,
and one LSMA replaces hundreds of fetched/decoded instructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.stats import CounterBag
from repro.config import GpuConfig
from repro.energy.gpuwattch import EnergyTable, default_energy_table

#: Fig 8 legend order.
CATEGORIES = ("Global", "Shared", "Register", "PE", "Const")

#: Warp-wide register operand = 32 words of 32 bits.
_WORDS_PER_RF_OPERAND = 32.0
_BYTES_PER_WORD = 4.0


@dataclass
class EnergyBreakdown:
    """Joules per category plus the total."""

    joules: dict[str, float] = field(
        default_factory=lambda: {name: 0.0 for name in CATEGORIES}
    )

    @property
    def total(self) -> float:
        return sum(self.joules.values())

    def add(self, category: str, joules: float) -> None:
        if category not in self.joules:
            raise KeyError(f"unknown energy category {category!r}")
        self.joules[category] += joules

    def merged(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        result = EnergyBreakdown()
        for name in CATEGORIES:
            result.joules[name] = self.joules[name] + other.joules[name]
        return result

    def scaled(self, factor: float) -> "EnergyBreakdown":
        result = EnergyBreakdown()
        for name in CATEGORIES:
            result.joules[name] = self.joules[name] * factor
        return result

    def normalized_to(self, reference_total: float) -> dict[str, float]:
        if reference_total <= 0:
            return {name: 0.0 for name in CATEGORIES}
        return {
            name: value / reference_total for name, value in self.joules.items()
        }


class EnergyLedger:
    """Converts counter bags into an :class:`EnergyBreakdown`."""

    def __init__(
        self,
        config: GpuConfig | None = None,
        table: EnergyTable | None = None,
    ) -> None:
        self.config = config or GpuConfig()
        self.table = table or default_energy_table(self.config)

    def account(self, counters: CounterBag) -> EnergyBreakdown:
        """Energy of one kernel/launch worth of events."""
        table = self.table
        pj = EnergyBreakdown()

        # Register file: warp-wide operands from the pipeline, word-level
        # accesses from the systolic controller are already /32.
        rf_operands = counters.get("rf_reads") + counters.get("rf_writes")
        pj.add("Register", rf_operands * _WORDS_PER_RF_OPERAND * table.rf_word_pj)

        smem_words = (
            counters.get("smem_read_words")
            + counters.get("smem_write_words")
            + counters.get("smem_read_words_weights")
        )
        pj.add("Shared", smem_words * table.smem_word_pj)

        # Global: L1/L2-level traffic at L2 energy plus DRAM traffic at
        # off-chip energy (dram_bytes is the L2-reuse-filtered count).
        l2_words = (
            counters.get("global_read_bytes") + counters.get("global_write_bytes")
        ) / _BYTES_PER_WORD
        dram_words = counters.get("dram_bytes") / _BYTES_PER_WORD
        pj.add("Global", l2_words * table.l2_word_pj + dram_words * table.dram_word_pj)

        pj.add("Const", counters.get("const_read_words") * table.const_word_pj)

        macs32 = counters.get("fp32_macs") + counters.get("sma_macs_fp32")
        macs16 = counters.get("fp16_macs") + counters.get("sma_macs_fp16")
        macs8 = counters.get("sma_macs_int8")
        control = (
            counters.get("instructions_issued") * table.instruction_pj
            + counters.get("sync_ops") * table.sync_pj
        )
        # Constant power (clock tree, latches, leakage) accrues for the
        # kernel's residency on every SM; faster configurations pay less.
        static = (
            counters.get("kernel_cycles")
            * self.config.num_sms
            * table.static_pj_per_sm_cycle
        )
        pj.add(
            "PE",
            macs32 * table.mac_fp32_pj
            + macs16 * table.mac_fp16_pj
            + macs8 * table.mac_int8_pj
            + control
            + static,
        )

        # picojoules -> joules
        return pj.scaled(1e-12)
