"""GPUWattch-style energy table for the Volta-like SM.

Builds per-event energies from the CACTI model and the Table-I structure
geometries. Events are the counters emitted by the SM pipeline and the
systolic controller; the ledger in ``repro.energy.accounting`` multiplies
and buckets them into the paper's Fig 8 categories:
Global / Shared / Register / PE / Const.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import GpuConfig
from repro.energy.cacti import (
    SramStructure,
    dram_access_energy_pj_per_word,
    mac_energy_pj,
    sram_access_energy_pj,
)


@dataclass(frozen=True)
class EnergyTable:
    """Per-event energies in picojoules."""

    rf_word_pj: float
    smem_word_pj: float
    l2_word_pj: float
    dram_word_pj: float
    const_word_pj: float
    mac_fp32_pj: float
    mac_fp16_pj: float
    mac_int8_pj: float
    instruction_pj: float
    sync_pj: float
    #: Clock tree, pipeline latches and leakage per SM per cycle — the
    #: GPUWattch "constant" power component that runs for the kernel's
    #: duration regardless of activity.
    static_pj_per_sm_cycle: float = 1200.0
    #: category per counter family (paper Fig 8 legend)
    categories: dict[str, str] = field(
        default_factory=lambda: {
            "rf": "Register",
            "smem": "Shared",
            "global": "Global",
            "const": "Const",
            "pe": "PE",
        }
    )


def default_energy_table(config: GpuConfig | None = None) -> EnergyTable:
    """Build the energy table for a GPU configuration."""
    config = config or GpuConfig()
    # The RF is physically many small operand-collector subarrays (128 x
    # 2 KB), not 8 monolithic banks; access energy follows the subarray
    # and sits below the shared-memory banks in the hierarchy.
    rf = SramStructure(
        name="register-file",
        capacity_bytes=config.register_file_kb * 1024,
        banks=128,
    )
    smem = SramStructure(
        name="shared-memory",
        capacity_bytes=config.shared_memory_kb * 1024,
        banks=config.shared_memory_banks,
    )
    l2 = SramStructure(
        name="l2-cache",
        capacity_bytes=config.l2_cache_mb * 1024 * 1024,
        banks=32,
    )
    const = SramStructure(name="const-cache", capacity_bytes=8 * 1024, banks=4)
    return EnergyTable(
        rf_word_pj=sram_access_energy_pj(rf),
        smem_word_pj=sram_access_energy_pj(smem),
        l2_word_pj=sram_access_energy_pj(l2),
        dram_word_pj=dram_access_energy_pj_per_word(hbm=True),
        const_word_pj=sram_access_energy_pj(const),
        mac_fp32_pj=mac_energy_pj(32),
        mac_fp16_pj=mac_energy_pj(16),
        mac_int8_pj=mac_energy_pj(8),
        # Fetch/decode/operand-collect overhead per issued instruction; the
        # LSMA instruction amortizes this over an entire tile (paper SS V-B:
        # "a complex control instruction which mitigates the overhead of
        # instruction fetch/decode").
        instruction_pj=18.0,
        sync_pj=40.0,
    )
