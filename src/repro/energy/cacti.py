"""CACTI-style per-access energy estimation for on-chip SRAM structures.

The paper estimates energy with GPUWattch + CACTI 5.1. We reproduce the
part that matters for Fig 8: per-access energies that grow with structure
capacity (wordline/bitline length) and port width. The scaling law is the
standard square-root-of-capacity model used in architecture evaluations;
absolute picojoules are anchored to published 45 nm numbers (Eyeriss /
GPUWattch): a 0.5 KB register-file bank costs ~1 pJ per 32-bit access and
a 128 KB SRAM ~6x that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError

#: Anchor: pJ for one 32-bit access to a 0.5 KB SRAM bank at 45 nm.
_ANCHOR_ENERGY_PJ = 1.0
_ANCHOR_CAPACITY_BYTES = 512.0


@dataclass(frozen=True)
class SramStructure:
    """Geometry of one banked SRAM structure."""

    name: str
    capacity_bytes: int
    banks: int = 1
    word_bits: int = 32

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigError(f"{self.name}: capacity must be positive")
        if self.banks <= 0:
            raise ConfigError(f"{self.name}: banks must be positive")
        if self.word_bits <= 0:
            raise ConfigError(f"{self.name}: word width must be positive")

    @property
    def bank_bytes(self) -> float:
        return self.capacity_bytes / self.banks


def sram_access_energy_pj(structure: SramStructure) -> float:
    """Energy of one word access, scaling with sqrt(bank capacity).

    Banking shortens bitlines, so the access energy follows the *bank*
    capacity; wider words scale linearly in the sense-amp count.
    """
    scale = math.sqrt(structure.bank_bytes / _ANCHOR_CAPACITY_BYTES)
    width_scale = structure.word_bits / 32.0
    return _ANCHOR_ENERGY_PJ * scale * width_scale


def mac_energy_pj(precision_bits: int) -> float:
    """Energy of one multiply-accumulate (45 nm anchors).

    FP32 MAC ~4.6 pJ (3.7 pJ multiply + add overheads); energy scales
    roughly quadratically with mantissa width, giving ~1.5 pJ for FP16 and
    ~0.6 pJ for INT8 — the ratios used across the accelerator literature.
    """
    anchors = {32: 4.6, 16: 1.5, 8: 0.6}
    try:
        return anchors[precision_bits]
    except KeyError:
        raise ConfigError(f"no MAC energy anchor for {precision_bits}-bit") from None


def dram_access_energy_pj_per_word(hbm: bool = True) -> float:
    """Off-chip access energy per 32-bit word (HBM2 ~ 4 pJ/bit)."""
    pj_per_bit = 4.0 if hbm else 20.0
    return 32.0 * pj_per_bit
