"""Energy model: CACTI-flavoured access energies + event-count accounting."""

from repro.energy.accounting import EnergyBreakdown, EnergyLedger
from repro.energy.cacti import SramStructure, sram_access_energy_pj
from repro.energy.gpuwattch import EnergyTable, default_energy_table

__all__ = [
    "EnergyBreakdown",
    "EnergyLedger",
    "EnergyTable",
    "SramStructure",
    "default_energy_table",
    "sram_access_energy_pj",
]
