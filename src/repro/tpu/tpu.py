"""The TPU core facade: GEMM timing plus lowered-op execution."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.stats import CounterBag
from repro.config import TpuConfig
from repro.tpu.array_timing import TpuGemmTiming, time_tpu_gemm
from repro.tpu.lowering import LoweredOp


@dataclass(frozen=True)
class TpuOpResult:
    """Timing of one op (native or lowered) on the TPU core."""

    seconds: float
    cycles: float
    macs: int
    counters: CounterBag


class TpuCore:
    """Executes GEMM-shaped work on the weight-stationary array."""

    def __init__(self, config: TpuConfig | None = None) -> None:
        self.config = config or TpuConfig()

    def gemm(self, m: int, n: int, k: int) -> TpuOpResult:
        timing: TpuGemmTiming = time_tpu_gemm(m, n, k, self.config)
        seconds = timing.cycles / (self.config.clock_ghz * 1e9)
        counters = CounterBag(
            {
                "tpu_cycles": timing.cycles,
                "tpu_macs": timing.macs,
                "tpu_weight_tiles": timing.weight_tiles,
            }
        )
        return TpuOpResult(
            seconds=seconds,
            cycles=timing.cycles,
            macs=timing.macs,
            counters=counters,
        )

    def run_lowered(self, ops: list[LoweredOp]) -> TpuOpResult:
        """Execute a lowering's dense op cascade back to back."""
        total_cycles = 0.0
        total_macs = 0
        counters = CounterBag()
        for op in ops:
            result = self.gemm(op.m, op.n, op.k)
            total_cycles += result.cycles
            total_macs += result.macs
            counters.merge(result.counters)
        seconds = total_cycles / (self.config.clock_ghz * 1e9)
        return TpuOpResult(
            seconds=seconds,
            cycles=total_cycles,
            macs=total_macs,
            counters=counters,
        )

    @property
    def peak_tflops(self) -> float:
        return self.config.peak_tflops
