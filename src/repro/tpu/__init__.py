"""TPU-like accelerator: 128x128 weight-stationary array + host coupling."""

from repro.tpu.array_timing import TpuGemmTiming, time_tpu_gemm
from repro.tpu.host import HostCpuModel, HostTransferModel
from repro.tpu.lowering import (
    LoweredOp,
    lower_argmax,
    lower_nms_to_gemm,
    lower_roialign_to_pooling,
)
from repro.tpu.tpu import TpuCore

__all__ = [
    "HostCpuModel",
    "HostTransferModel",
    "LoweredOp",
    "TpuCore",
    "TpuGemmTiming",
    "lower_argmax",
    "lower_nms_to_gemm",
    "lower_roialign_to_pooling",
    "time_tpu_gemm",
]
