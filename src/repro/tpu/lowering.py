"""XLA-style lowering of GEMM-incompatible operators to TPU-native ops.

SS II-B of the paper examines the TPU build of Mask R-CNN and finds that the
compiler "converts the control-flow intensive NMS operation ... to multiple
dataflow-based GEMM operations, and converts RoIAlign ... to multiple
average pooling operations", which avoids host transfers but wastes a large
amount of array work. These lowerings reproduce that inflation: each one
reports the dense ops that replace the irregular kernel, and the resulting
MAC counts are orders of magnitude above the useful work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.mathutil import ceil_div
from repro.errors import LoweringError


@dataclass(frozen=True)
class LoweredOp:
    """One dense op emitted by the lowering (runs on the systolic array)."""

    kind: str              # "gemm" or "pool"
    m: int
    n: int
    k: int
    description: str = ""

    @property
    def macs(self) -> int:
        return self.m * self.n * self.k


def lower_nms_to_gemm(
    num_boxes: int, iterations: int | None = None
) -> list[LoweredOp]:
    """Non-max suppression as a cascade of dense matrix operations.

    The dataflow formulation computes the full pairwise IoU matrix (a
    sequence of B x B rank-4 products for the box coordinate algebra), then
    runs ``iterations`` suppression passes, each a dense B x B masking
    product against the score vector — control flow unrolled into data flow.
    """
    if num_boxes <= 0:
        raise LoweringError("NMS needs at least one box")
    if iterations is None:
        # The compiler unrolls a worst-case suppression schedule: the loop
        # cannot early-exit once control flow is gone.
        iterations = max(1, ceil_div(num_boxes, 8))
    ops = [
        LoweredOp(
            kind="gemm",
            m=num_boxes,
            n=num_boxes,
            k=4,
            description="pairwise box-overlap coordinate algebra",
        ),
        LoweredOp(
            kind="gemm",
            m=num_boxes,
            n=num_boxes,
            k=4,
            description="pairwise box-area / union terms",
        ),
    ]
    # Each pass masks a block of candidates against every survivor; the
    # unrolled dataflow emits one dense op per (pass, block).
    blocks = max(1, ceil_div(num_boxes, 128))
    for index in range(iterations):
        for block in range(blocks):
            ops.append(
                LoweredOp(
                    kind="gemm",
                    m=min(128, num_boxes),
                    n=num_boxes,
                    k=num_boxes,
                    description=f"suppression pass {index} block {block}",
                )
            )
    return ops


def lower_roialign_to_pooling(
    num_rois: int,
    pooled_height: int = 14,
    pooled_width: int = 14,
    channels: int = 256,
    sampling_points: int = 4,
) -> list[LoweredOp]:
    """RoIAlign as multiple average-pooling ops over fixed grids.

    Bilinear interpolation at arbitrary coordinates is not expressible on
    the array, so the compiler snaps each RoI to a fixed grid and emits one
    average pooling per sampling point, each itself padded to the array's
    native tile. The pool is modelled as a GEMM against a constant
    averaging matrix, which is how dataflow engines execute pooling.
    """
    if num_rois <= 0:
        raise LoweringError("RoIAlign needs at least one RoI")
    ops = []
    bin_count = pooled_height * pooled_width
    # RoIs are snapped per block of 16 (a crop + pool chain each); within a
    # block one pooling op per sampling point.
    roi_blocks = max(1, ceil_div(num_rois, 16))
    for block in range(roi_blocks):
        rois_here = min(16, num_rois - block * 16)
        for point in range(sampling_points):
            ops.append(
                LoweredOp(
                    kind="pool",
                    m=rois_here * bin_count,
                    n=channels,
                    # Each output bin averages a padded 16-tap window.
                    k=16,
                    description=(
                        f"avg-pool, RoI block {block}, sampling point {point}"
                    ),
                )
            )
    return ops


def lower_argmax(
    height: int, width: int, num_classes: int
) -> list[LoweredOp]:
    """Per-pixel ArgMax as a max-reduction tournament of dense ops.

    The array has no compare-exchange primitive; the compiler emits a
    log2(num_classes) tournament of elementwise max steps, each a pass over
    the full H x W x C tensor (modelled as a GEMM with K=2 against a
    selection matrix).
    """
    if height <= 0 or width <= 0 or num_classes <= 1:
        raise LoweringError("argmax needs a spatial extent and >= 2 classes")
    ops = []
    remaining = num_classes
    level = 0
    while remaining > 1:
        # One dense op per class pair, plus two layout passes each (the
        # array needs its operands re-tiled before and after every max).
        for pair in range(remaining // 2):
            ops.append(
                LoweredOp(
                    kind="gemm",
                    m=height * width,
                    n=1,
                    k=2,
                    description=f"max-tournament level {level} pair {pair}",
                )
            )
            for direction in ("pre", "post"):
                ops.append(
                    LoweredOp(
                        kind="gemm",
                        m=height * width,
                        n=1,
                        k=1,
                        description=(
                            f"{direction}-reshape level {level} pair {pair}"
                        ),
                    )
                )
        remaining = ceil_div(remaining, 2)
        level += 1
    return ops
