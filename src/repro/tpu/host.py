"""Host CPU and PCIe transfer models for TPU-offloaded operators.

DeepLab's CRF cannot be lowered to the array at all, so the TPU system
ships the tensors back to the host, runs the operator on one CPU core, and
ships results back (paper Fig 3: the transfer alone costs 1.2x the TPU's
GEMM time, and the single-core CRF is 10.65x slower than the GPU).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CpuConfig, TpuConfig
from repro.errors import SimulationError


@dataclass(frozen=True)
class TransferCost:
    """One direction of a host<->device transfer."""

    bytes_moved: float
    seconds: float


class HostTransferModel:
    """PCIe-like link: fixed latency plus payload / bandwidth."""

    def __init__(
        self, config: TpuConfig | None = None, latency_s: float = 20e-6
    ) -> None:
        self.config = config or TpuConfig()
        self.latency_s = latency_s
        if self.config.host_transfer_gbps <= 0:
            raise SimulationError("transfer bandwidth must be positive")

    def transfer(self, num_bytes: float) -> TransferCost:
        if num_bytes < 0:
            raise SimulationError("negative transfer size")
        bandwidth = self.config.host_transfer_gbps * 1e9
        seconds = self.latency_s + num_bytes / bandwidth
        return TransferCost(bytes_moved=num_bytes, seconds=seconds)


class HostCpuModel:
    """Single-core roofline: max(compute, memory) with a serial fraction."""

    def __init__(self, config: CpuConfig | None = None) -> None:
        self.config = config or CpuConfig()

    def op_seconds(
        self,
        flops: float,
        bytes_touched: float,
        serial_fraction: float = 0.0,
    ) -> float:
        """Execution time of an operator on one host core.

        ``serial_fraction`` models irreducibly sequential work (e.g. the
        CRF's message-passing iterations) that runs at 1/8 of the vector
        rate.
        """
        if not (0.0 <= serial_fraction <= 1.0):
            raise SimulationError("serial_fraction must be in [0, 1]")
        config = self.config
        vector_flops = config.sustained_gflops * 1e9
        scalar_flops = vector_flops / 8.0
        compute = (
            flops * (1.0 - serial_fraction) / vector_flops
            + flops * serial_fraction / scalar_flops
        )
        memory = bytes_touched / (config.dram_bandwidth_gbps * 1e9)
        return max(compute, memory)
