"""Weight-stationary systolic GEMM timing for the TPU core (Fig 1).

For each resident 128x128 weight tile the array streams all M rows of A
through: ``M + fill + drain`` cycles. Weight loads are double-buffered via
the weight FIFO, so only the first load is exposed. Efficiency therefore
ramps as ``M / (M + fill + drain)`` — the mechanism behind the TPU curve in
Fig 1 reaching ~100% only once the matrix dwarfs the array.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.mathutil import ceil_div
from repro.config import TpuConfig
from repro.errors import SimulationError


@dataclass(frozen=True)
class TpuGemmTiming:
    """Cycle budget of one (M, N, K) GEMM on the weight-stationary array."""

    m: int
    n: int
    k: int
    cycles: float
    weight_tiles: int
    efficiency: float

    @property
    def macs(self) -> int:
        return self.m * self.n * self.k


def time_tpu_gemm(
    m: int, n: int, k: int, config: TpuConfig | None = None
) -> TpuGemmTiming:
    """Time C(MxN) = A(MxK) @ B(KxN) with B resident tile by tile."""
    if m <= 0 or n <= 0 or k <= 0:
        raise SimulationError("GEMM dims must be positive")
    config = config or TpuConfig()
    rows, cols = config.array_rows, config.array_cols

    k_tiles = ceil_div(k, rows)
    n_tiles = ceil_div(n, cols)
    weight_tiles = k_tiles * n_tiles

    fill = rows          # skew fill of the A diagonal
    drain = cols         # south-edge drain of the C diagonal
    per_tile = m + fill + drain
    cycles = float(weight_tiles * per_tile)
    # First weight load is exposed; the FIFO hides the rest.
    cycles += rows

    ideal = (m * n * k) / float(rows * cols)
    efficiency = ideal / cycles if cycles > 0 else 0.0
    return TpuGemmTiming(
        m=m,
        n=n,
        k=k,
        cycles=cycles,
        weight_tiles=weight_tiles,
        efficiency=min(1.0, efficiency),
    )
