"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    python -m repro list                 # available experiments
    python -m repro run fig7_left        # print one regenerated figure
    python -m repro run all              # print everything
    python -m repro export [-o results]  # write every figure as CSV
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.export import EXPERIMENT_RUNNERS, export_all


def _cmd_list() -> int:
    for name, runner in EXPERIMENT_RUNNERS.items():
        doc = (runner.__doc__ or "").strip().splitlines()[0]
        print(f"{name:14s} {doc}")
    return 0


def _cmd_run(names: list[str]) -> int:
    if names == ["all"]:
        names = list(EXPERIMENT_RUNNERS)
    failures = 0
    for name in names:
        runner = EXPERIMENT_RUNNERS.get(name)
        if runner is None:
            print(f"unknown experiment {name!r}; try 'python -m repro list'")
            return 2
        report = runner()
        print(report.render())
        print()
        if not report.all_passed:
            failures += 1
    return 1 if failures else 0


def _cmd_export(output: str, names: list[str] | None) -> int:
    written = export_all(output, names)
    for name, path in written.items():
        print(f"{name:14s} -> {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SMA (DAC 2020) reproduction: regenerate paper results",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")

    run_parser = sub.add_parser("run", help="run experiments and print tables")
    run_parser.add_argument("names", nargs="+", help="experiment names or 'all'")

    export_parser = sub.add_parser("export", help="export experiments as CSV")
    export_parser.add_argument("-o", "--output", default="results")
    export_parser.add_argument("names", nargs="*", default=None)

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.names)
    if args.command == "export":
        return _cmd_export(args.output, args.names or None)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
