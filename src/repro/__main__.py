"""Command-line interface: simulate workloads and regenerate the paper.

Every simulation subcommand goes through the :class:`repro.api.Session`
facade, so repeated GEMM shapes share one process-wide timing cache.

Usage::

    python -m repro list                         # experiments, platforms, models
    python -m repro simulate mask_rcnn sma:3     # run a model on platform(s)
    python -m repro simulate deeplab gpu-simd tpu --json
    python -m repro bench 4096 -p gpu-tc -p sma:3  # time one GEMM
    python -m repro bench 4096x1024x4096
    python -m repro sweep -p sma:2..4 -p gpu-tc -g 1024 -g 4096 --jobs 4 \
        --store sweep.sqlite --resume            # sharded, resumable sweep
    python -m repro run fig7_left                # print one regenerated figure
    python -m repro run all                      # print everything
    python -m repro export [-o results]          # write every figure as CSV
"""

from __future__ import annotations

import argparse
import sys

from repro.api import (
    Session,
    SimRequest,
    available_models,
    available_platforms,
)
from repro.common.tables import render_table
from repro.errors import ReproError
from repro.experiments.export import EXPERIMENT_RUNNERS, export_all
from repro.platforms.base import REPORTING_GROUPS as GROUP_ORDER

#: Default platform sweep for `bench` (every GEMM-capable backend).
BENCH_PLATFORMS = ("gpu-simd", "gpu-tc", "sma:2", "sma:3")


def _cmd_list() -> int:
    print("experiments:")
    for name, runner in EXPERIMENT_RUNNERS.items():
        doc = (runner.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:14s} {doc}")
    print()
    print("platforms (python -m repro simulate MODEL PLATFORM):")
    for name, description in available_platforms().items():
        print(f"  {name:14s} {description}")
    print()
    print("models:")
    for name, description in available_models().items():
        print(f"  {name:14s} {description}")
    return 0


def _print_cache_line(session: Session) -> None:
    stats = session.cache_stats
    print(
        f"shared GEMM cache: {stats.hits} hits / {stats.misses} misses"
        f" ({stats.hit_rate:.0%} hit rate)"
    )


def _cmd_simulate(model: str, platforms: list[str], as_json: bool) -> int:
    session = Session()
    batch = session.run_batch(
        [SimRequest(platform=spec, model=model) for spec in platforms]
    )
    if as_json:
        print(batch.to_json(indent=2))
        return 0
    rows = []
    for report in batch:
        groups = report.grouped_seconds()
        rows.append(
            [report.platform, report.total_ms]
            + [groups.get(group, 0.0) * 1e3 for group in GROUP_ORDER]
        )
    print(
        render_table(
            ["platform", "total_ms"] + [f"{g}_ms" for g in GROUP_ORDER],
            rows,
            title=f"{model}: end-to-end latency per platform",
        )
    )
    print()
    _print_cache_line(session)
    return 0


def _parse_gemm(text: str) -> tuple[int, int, int]:
    parts = text.lower().split("x")
    try:
        dims = tuple(int(part) for part in parts)
    except ValueError:
        raise SystemExit(
            f"bad GEMM spec {text!r}; expected N or MxNxK"
        ) from None
    if len(dims) == 1:
        return dims[0], dims[0], dims[0]
    if len(dims) == 3:
        return dims
    raise SystemExit(f"bad GEMM spec {text!r}; expected N or MxNxK")


def _cmd_bench(gemm: str, platforms: list[str], as_json: bool) -> int:
    shape = _parse_gemm(gemm)
    session = Session()
    reports = [session.time_gemm(spec, shape) for spec in platforms]
    if as_json:
        import json

        print(json.dumps([report.to_dict() for report in reports], indent=2))
        return 0
    baseline = reports[0].seconds
    rows = [
        [
            report.platform,
            report.dtype,
            report.milliseconds,
            report.tflops,
            report.sm_efficiency,
            baseline / report.seconds,
        ]
        for report in reports
    ]
    m, n, k = shape
    print(
        render_table(
            ["platform", "dtype", "ms", "tflops", "sm_efficiency",
             f"speedup_vs_{platforms[0]}"],
            rows,
            title=f"GEMM {m}x{n}x{k} on the simulated V100",
        )
    )
    print()
    _print_cache_line(session)
    return 0


def _cmd_sweep(args) -> int:
    from repro.sweep import ResultStore, SweepSpec, expand, run_sweep

    gemms = tuple(_parse_gemm(text) for text in (args.gemms or ()))
    spec = SweepSpec(
        platforms=tuple(args.platforms),
        models=tuple(args.models or ()),
        gemms=gemms,
        dataflows=tuple(args.dataflows) if args.dataflows else (None,),
        schedulers=tuple(args.schedulers) if args.schedulers else (None,),
        gemm_dtype=args.dtype,
        tag=args.tag,
    )
    grid = expand(spec)
    session = Session()
    store = ResultStore(args.store) if args.store else None
    try:
        result = run_sweep(
            grid,
            jobs=args.jobs,
            store=store,
            resume=args.resume,
            session=session,
        )
        if args.json:
            print(result.to_json(indent=2))
            return 0
        rows = []
        for point, report in zip(grid.points, result.reports):
            request = point.request
            workload = request.model or f"{report.m}x{report.n}x{report.k}"
            rows.append(
                [
                    point.request_id,
                    request.platform,
                    workload,
                    request.dataflow or "-",
                    request.scheduler or "-",
                    (
                        report.total_ms
                        if request.kind == "model"
                        else report.milliseconds
                    ),
                    "store" if point.request_id in result.loaded else "run",
                ]
            )
        print(
            render_table(
                ["request", "platform", "workload", "dataflow", "scheduler",
                 "ms", "source"],
                rows,
                title=(
                    f"sweep: {len(grid)} requests, {args.jobs} worker(s),"
                    f" {len(result.executed)} simulated,"
                    f" {len(result.loaded)} loaded from store"
                ),
            )
        )
        print()
        stats = result.cache_stats
        print(
            f"merged GEMM cache: {stats.hits} hits / {stats.misses} misses"
            f" ({stats.hit_rate:.0%} hit rate),"
            f" {stats.window_hits} window hits"
        )
        if store is not None:
            print(f"result store: {store.path} ({len(store)} results)")
        return 0
    finally:
        if store is not None:
            store.close()


def _cmd_run(names: list[str]) -> int:
    if names == ["all"]:
        names = list(EXPERIMENT_RUNNERS)
    failures = 0
    for name in names:
        runner = EXPERIMENT_RUNNERS.get(name)
        if runner is None:
            print(f"unknown experiment {name!r}; try 'python -m repro list'")
            return 2
        report = runner()
        print(report.render())
        print()
        if not report.all_passed:
            failures += 1
    return 1 if failures else 0


def _cmd_export(output: str, names: list[str] | None) -> int:
    written = export_all(output, names)
    for name, path in written.items():
        print(f"{name:14s} -> {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SMA (DAC 2020) reproduction: simulate and regenerate",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiments, platforms, and models")

    sim_parser = sub.add_parser(
        "simulate", help="run MODEL on PLATFORM(s) via the Session facade"
    )
    sim_parser.add_argument("model", help="model spec, e.g. mask_rcnn")
    sim_parser.add_argument(
        "platforms", nargs="+", help="platform specs, e.g. sma:3 gpu-tc"
    )
    sim_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    bench_parser = sub.add_parser(
        "bench", help="time one GEMM across platforms"
    )
    bench_parser.add_argument("gemm", help="N or MxNxK, e.g. 4096 or 4096x1024x4096")
    bench_parser.add_argument(
        "-p", "--platform", action="append", dest="platforms",
        help=f"platform spec (repeatable); default: {' '.join(BENCH_PLATFORMS)}",
    )
    bench_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    sweep_parser = sub.add_parser(
        "sweep",
        help="expand a spec grid and run it, optionally sharded/resumable",
    )
    sweep_parser.add_argument(
        "-p", "--platform", action="append", dest="platforms", required=True,
        help="platform spec (repeatable); ranges like sma:2..4 expand",
    )
    sweep_parser.add_argument(
        "-m", "--model", action="append", dest="models",
        help="model spec (repeatable), e.g. mask_rcnn",
    )
    sweep_parser.add_argument(
        "-g", "--gemm", action="append", dest="gemms",
        help="GEMM workload (repeatable): N or MxNxK",
    )
    sweep_parser.add_argument(
        "--dataflow", action="append", dest="dataflows",
        help="dataflow override axis (repeatable): ws, sbws, os",
    )
    sweep_parser.add_argument(
        "--scheduler", action="append", dest="schedulers",
        help="scheduler override axis (repeatable): gto, lrr, sma_rr",
    )
    sweep_parser.add_argument(
        "--dtype", default="fp16", help="dtype of bare GEMM sizes",
    )
    sweep_parser.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes; caches merge back on join",
    )
    sweep_parser.add_argument(
        "--store", default=None, metavar="PATH",
        help="sqlite result store; results persist as they finish",
    )
    sweep_parser.add_argument(
        "--resume", action="store_true",
        help="skip requests already in the store (requires --store)",
    )
    sweep_parser.add_argument("--tag", default=None, help="label for reports")
    sweep_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    run_parser = sub.add_parser("run", help="run experiments and print tables")
    run_parser.add_argument("names", nargs="+", help="experiment names or 'all'")

    export_parser = sub.add_parser("export", help="export experiments as CSV")
    export_parser.add_argument("-o", "--output", default="results")
    export_parser.add_argument("names", nargs="*", default=None)

    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "simulate":
            return _cmd_simulate(args.model, args.platforms, args.json)
        if args.command == "bench":
            return _cmd_bench(
                args.gemm, args.platforms or list(BENCH_PLATFORMS), args.json
            )
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "run":
            return _cmd_run(args.names)
        if args.command == "export":
            return _cmd_export(args.output, args.names or None)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
