"""Command-line interface: simulate workloads and regenerate the paper.

Every simulation subcommand goes through the :class:`repro.api.Session`
facade, so repeated GEMM shapes share one process-wide timing cache.

Usage::

    python -m repro list                         # experiments, platforms, models
    python -m repro simulate mask_rcnn sma:3     # run a model on platform(s)
    python -m repro simulate deeplab gpu-simd tpu --json
    python -m repro bench 4096 -p gpu-tc -p sma:3  # time one GEMM
    python -m repro bench 4096x1024x4096
    python -m repro sweep -p sma:2..4 -p gpu-tc -g 1024 -g 4096 --jobs 4 \
        --store sweep.sqlite --resume            # sharded, resumable sweep
    python -m repro scenario -p sma:3 --frames 4 --policy priority \
        -s "mask_rcnn@prio=3,deadline=0.2" -s deeplab -s vgg_a
                                                 # multi-stream timeline
    python -m repro serve -p sma:3 --frames 16 --qos drop_late \
        -s "mask_rcnn@deadline=0.2,rate=15" -s "vgg_a@rate=15" \
        --save-trace trace.json                  # open-loop serving
    python -m repro serve --spec scenario.json --trace trace.json --json
    python -m repro serve -p sma:3 --frames 1000000 --qos drop_late \
        -s "goturn@deadline=0.05,rate=200" --streaming  # bounded memory
    python -m repro scenario --engine vectorized ...    # timeline engine
                                                 # (or REPRO_ENGINE=...)
    python -m repro serve -p sma:3 -p gpu-tc -s "deeplab@deadline=0.1" \
        --explore --rates 5,10,20 --slo-ms 100   # SLO explorer
    python -m repro serve -p sma:3 -s "deeplab@deadline=0.1" --explore \
        --rates 4,64 --search bisect --slo-ms 100  # bisect to the max rate
    python -m repro cluster serve --port 7070 --jobs 4  # warm sweep service
    python -m repro cluster status 127.0.0.1:7070
    python -m repro cluster sweep -p sma:2..4 -g 1024 --store sweep.sqlite \
        --server 127.0.0.1:7070 --server 10.0.0.2:7070  # cross-host shards
    python -m repro cluster serving -p sma:3 --frames 8 \
        -s "mask_rcnn@rate=15" -s "vgg_a@rate=15" \
        --server 127.0.0.1:7070 --server 127.0.0.1:7071  # split one trace
    python -m repro fuzz run --seed 7 --batch 64 --store corpus.sqlite \
        --reproducer-dir repros            # adversarial invariant fuzzing
    python -m repro fuzz run --seed 7 --batch 64 --differential \
        # every case on both timeline engines; divergence = violation
    python -m repro fuzz run --seed 7 --batch 64 \
        --server 127.0.0.1:7070 --server 10.0.0.2:7070  # fleet campaign
    python -m repro fuzz replay repros/c000002-priority_ladder.json
    python -m repro fuzz shrink failing_case.json -o minimal.json
    python -m repro store-diff old.sqlite new.sqlite  # regression gate
    python -m repro run fig7_left                # print one regenerated figure
    python -m repro run all                      # print everything
    python -m repro export [-o results]          # write every figure as CSV
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys

from repro.api import (
    ScenarioSpec,
    Session,
    SimRequest,
    StreamSpec,
    available_models,
    available_platforms,
)
from repro.common.tables import render_table
from repro.errors import ConfigError, ReproError
from repro.experiments.export import EXPERIMENT_RUNNERS, export_all
from repro.platforms.base import REPORTING_GROUPS as GROUP_ORDER
from repro.schedule import ENGINE_ENV, ENGINE_NAMES

#: Default platform sweep for `bench` (every GEMM-capable backend).
BENCH_PLATFORMS = ("gpu-simd", "gpu-tc", "sma:2", "sma:3")


def _cmd_list() -> int:
    print("experiments:")
    for name, runner in EXPERIMENT_RUNNERS.items():
        doc = (runner.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:14s} {doc}")
    print()
    print("platforms (python -m repro simulate MODEL PLATFORM):")
    for name, description in available_platforms().items():
        print(f"  {name:14s} {description}")
    print()
    print("models:")
    for name, description in available_models().items():
        print(f"  {name:14s} {description}")
    return 0


def _cmd_catalog(args) -> int:
    from repro.catalog import loader

    if args.catalog_command == "list":
        rows = []
        for name in loader.device_names():
            spec = loader.get_device(name)
            rows.append(
                [
                    spec.name,
                    spec.family,
                    spec.vendor,
                    spec.year,
                    spec.area_mm2,
                    spec.tdp_w,
                    spec.fingerprint(),
                    ",".join(spec.aliases) or "-",
                ]
            )
        if args.json:
            print(
                json.dumps(
                    [
                        loader.get_device(name).to_dict()
                        for name in loader.device_names()
                    ],
                    indent=2,
                )
            )
            return 0
        print(
            render_table(
                ["device", "family", "vendor", "year", "area_mm2",
                 "tdp_w", "fingerprint", "aliases"],
                rows,
                title="device catalog (platform specs: NAME, simd@NAME,"
                " sma@NAME[:UNITS[,DTYPE]], tpu@GEN)",
            )
        )
        return 0

    spec = loader.get_device(args.name)
    if args.json:
        print(spec.to_json(indent=2))
        return 0
    config = spec.gpu if spec.gpu is not None else spec.tpu
    rows = [["name", spec.name],
            ["family", spec.family],
            ["description", spec.description],
            ["vendor", spec.vendor],
            ["year", spec.year],
            ["area_mm2", spec.area_mm2],
            ["tdp_w", spec.tdp_w],
            ["aliases", ",".join(spec.aliases) or "-"],
            ["fingerprint", spec.fingerprint()]]
    rows += [
        [f"{spec.family}.{key}", value]
        for key, value in sorted(dataclasses.asdict(config).items())
    ]
    rows += [
        [f"interference.{pair}", factor]
        for pair, factor in spec.interference.to_dict().items()
    ]
    print(render_table(["field", "value"], rows, title=f"device {spec.name}"))
    return 0


def _print_cache_line(session: Session) -> None:
    stats = session.cache_stats
    print(
        f"shared GEMM cache: {stats.hits} hits / {stats.misses} misses"
        f" ({stats.hit_rate:.0%} hit rate)"
    )


def _cmd_simulate(model: str, platforms: list[str], as_json: bool) -> int:
    session = Session()
    batch = session.run_batch(
        [SimRequest(platform=spec, model=model) for spec in platforms]
    )
    if as_json:
        print(batch.to_json(indent=2))
        return 0
    rows = []
    for report in batch:
        groups = report.grouped_seconds()
        rows.append(
            [report.platform, report.total_ms]
            + [groups.get(group, 0.0) * 1e3 for group in GROUP_ORDER]
        )
    print(
        render_table(
            ["platform", "total_ms"] + [f"{g}_ms" for g in GROUP_ORDER],
            rows,
            title=f"{model}: end-to-end latency per platform",
        )
    )
    print()
    _print_cache_line(session)
    return 0


def _parse_gemm(text: str) -> tuple[int, int, int]:
    parts = text.lower().split("x")
    try:
        dims = tuple(int(part) for part in parts)
    except ValueError:
        raise SystemExit(
            f"bad GEMM spec {text!r}; expected N or MxNxK"
        ) from None
    if len(dims) == 1:
        return dims[0], dims[0], dims[0]
    if len(dims) == 3:
        return dims
    raise SystemExit(f"bad GEMM spec {text!r}; expected N or MxNxK")


def _cmd_bench(gemm: str, platforms: list[str], as_json: bool) -> int:
    shape = _parse_gemm(gemm)
    session = Session()
    reports = [session.time_gemm(spec, shape) for spec in platforms]
    if as_json:
        import json

        print(json.dumps([report.to_dict() for report in reports], indent=2))
        return 0
    baseline = reports[0].seconds
    rows = [
        [
            report.platform,
            report.dtype,
            report.milliseconds,
            report.tflops,
            report.sm_efficiency,
            baseline / report.seconds,
        ]
        for report in reports
    ]
    m, n, k = shape
    print(
        render_table(
            ["platform", "dtype", "ms", "tflops", "sm_efficiency",
             f"speedup_vs_{platforms[0]}"],
            rows,
            title=f"GEMM {m}x{n}x{k} on the simulated V100",
        )
    )
    print()
    _print_cache_line(session)
    return 0


def _parse_stream(text: str) -> StreamSpec:
    """Parse one ``-s MODEL[@key=value,...]`` stream option.

    Keys: ``name``, ``prio``/``priority``, ``skip``, ``period``,
    ``deadline`` (seconds), plus the open-loop arrival keys ``rate``
    (Hz), ``arrival`` (``poisson``/``mmpp``/``fixed``), and ``seed``.
    The model spec may itself carry ``:`` args (``deeplab:nocrf``),
    hence the ``@`` separator.
    """
    from repro.serving import ArrivalSpec

    model, _sep, rest = text.partition("@")
    model = model.strip()
    if not model:
        raise ConfigError(f"stream {text!r} has no model spec")
    options: dict = {"name": model, "model": model}
    arrival: dict = {}
    if rest:
        for part in rest.split(","):
            key, sep, value = part.partition("=")
            key = key.strip().lower()
            if not sep or not value.strip():
                raise ConfigError(
                    f"stream {text!r}: expected key=value, got {part!r}"
                )
            value = value.strip()
            try:
                if key in ("prio", "priority"):
                    options["priority"] = float(value)
                elif key == "skip":
                    options["skip_interval"] = int(value)
                elif key == "period":
                    options["period_s"] = float(value)
                elif key == "deadline":
                    options["deadline_s"] = float(value)
                elif key == "name":
                    options["name"] = value
                elif key == "rate":
                    arrival["rate_hz"] = float(value)
                elif key == "arrival":
                    arrival["kind"] = value
                elif key == "seed":
                    arrival["seed"] = int(value)
                else:
                    raise ConfigError(
                        f"stream {text!r}: unknown key {key!r}; one of"
                        " name, prio, skip, period, deadline, rate,"
                        " arrival, seed"
                    )
            except ValueError:
                raise ConfigError(
                    f"stream {text!r}: bad value {value!r} for {key!r}"
                ) from None
    if arrival:
        arrival.setdefault("kind", "poisson")
        options["arrivals"] = ArrivalSpec(**arrival)
    return StreamSpec(**options)


def _load_scenario_file(path: str) -> ScenarioSpec:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return ScenarioSpec.from_json(handle.read())
    except OSError as error:
        raise ConfigError(f"cannot read scenario file {path!r}: {error}")


def _scenario_from_args(args, platform: str | None, command: str) -> ScenarioSpec:
    """Build the scenario a ``scenario``/``serve`` invocation describes."""
    if args.spec:
        if args.streams:
            raise ConfigError(
                "--spec already defines the streams; drop the -s options"
            )
        # Command-line flags re-target the file's spec: -p/--platform via
        # run_scenario's platform argument, the rest by replacement.
        scenario = _load_scenario_file(args.spec)
        overrides = {
            key: value
            for key, value in (
                ("frames", args.frames),
                ("policy", args.policy),
                ("name", args.name),
            )
            if value is not None
        }
        if overrides:
            scenario = dataclasses.replace(scenario, **overrides)
    else:
        if not args.streams:
            raise ConfigError(
                f"{command} needs -s/--stream options (or --spec FILE)"
            )
        streams = tuple(_parse_stream(text) for text in args.streams)
        if not platform:
            raise ConfigError(f"{command} needs -p/--platform")
        scenario = ScenarioSpec(
            name=args.name if args.name is not None else command,
            streams=streams,
            platform=platform,
            frames=args.frames if args.frames is not None else 1,
            policy=args.policy if args.policy is not None else "fifo",
        )
    return scenario


def _make_tracer(args):
    """A fresh :class:`~repro.obs.trace.Tracer` when ``--trace-out`` asks.

    Returns ``None`` otherwise, so every engine trace site stays on its
    zero-overhead path (tracing is strictly opt-in per invocation).
    """
    if getattr(args, "trace_out", None) is None:
        return None
    from repro.obs import Tracer

    return Tracer()


def _save_trace_out(tracer, args, name: str) -> None:
    """Write the collected trace as Chrome/Perfetto JSON and say where."""
    if tracer is None:
        return
    from repro.obs import save_chrome_trace

    save_chrome_trace(tracer, args.trace_out, name=name)
    print(
        f"perfetto trace ({len(tracer.records)} events) written to"
        f" {args.trace_out}",
        file=sys.stderr,
    )


def _cmd_scenario(args) -> int:
    scenario = _scenario_from_args(args, args.platform, "scenario")
    session = Session()
    tracer = _make_tracer(args)
    report = session.run_scenario(
        scenario, args.platform or None, tracer=tracer
    )
    _save_trace_out(tracer, args, report.scenario)
    if args.json:
        print(report.to_json(indent=2))
        return 0
    rows = [
        [
            stream.name,
            stream.model,
            stream.priority,
            f"{stream.frames_run}/{stream.frames_run + stream.frames_skipped}",
            stream.busy_s * 1e3,
            stream.stretch,
            stream.mean_latency_s * 1e3,
            stream.max_latency_s * 1e3,
            stream.deadline_misses,
        ]
        for stream in report.streams
    ]
    print(
        render_table(
            ["stream", "model", "prio", "frames", "busy_ms", "stretch",
             "mean_lat_ms", "max_lat_ms", "misses"],
            rows,
            title=(
                f"scenario {report.scenario!r} on {report.platform}"
                f" ({report.policy} policy, {report.frames} frame(s))"
            ),
        )
    )
    print()
    occupancy = ", ".join(
        f"{kind}={fraction:.0%}"
        for kind, fraction in sorted(report.occupancy.items())
    )
    print(
        f"makespan {report.makespan_s * 1e3:.3f} ms,"
        f" avg frame latency {report.avg_frame_latency_ms:.3f} ms"
    )
    print(
        f"resource occupancy: {occupancy or 'n/a'};"
        f" cross-stream mode switches: {report.mode_switches}"
        f" ({report.switch_overhead_s * 1e6:.2f} us)"
    )
    _print_cache_line(session)
    return 0


def _parse_qos(text: str):
    """Parse a ``--qos KIND[:PARAM]`` option into a :class:`QosSpec`.

    ``drop_late[:SLACK_S]``, ``abort_late[:SLACK_S]``, ``queue_cap:CAP``,
    ``shed:CAP[:MIN_PRIO]``.
    """
    from repro.serving import QosSpec

    kind, _sep, rest = text.partition(":")
    kind = kind.strip()
    parts = [part.strip() for part in rest.split(":") if part.strip()]
    try:
        if kind in ("drop_late", "abort_late"):
            if len(parts) > 1:
                raise ConfigError(
                    f"qos {text!r}: {kind} takes at most one slack value"
                )
            return QosSpec(
                kind=kind, slack_s=float(parts[0]) if parts else 0.0
            )
        if kind in ("queue_cap", "shed"):
            if not parts:
                raise ConfigError(f"qos {text!r}: {kind} needs a cap")
            if kind == "queue_cap" and len(parts) > 1:
                raise ConfigError(f"qos {text!r}: queue_cap takes one cap")
            if len(parts) > 2:
                raise ConfigError(
                    f"qos {text!r}: shed takes cap[:min_priority]"
                )
            return QosSpec(
                kind=kind,
                cap=int(parts[0]),
                min_priority=float(parts[1]) if len(parts) == 2 else None,
            )
    except ValueError:
        raise ConfigError(f"qos {text!r}: bad numeric parameter") from None
    from repro.serving import QOS_KINDS

    raise ConfigError(f"unknown qos kind {kind!r}; one of {QOS_KINDS}")


def _parse_rates(text: str) -> tuple[float, ...]:
    try:
        rates = tuple(
            float(part) for part in text.split(",") if part.strip()
        )
    except ValueError:
        raise ConfigError(
            f"bad --rates {text!r}; expected comma-separated Hz values"
        ) from None
    if not rates:
        raise ConfigError("--rates needs at least one arrival rate")
    return rates


def _print_serving_report(report, session: Session) -> None:
    rows = [
        [
            stream.name,
            stream.model,
            f"{stream.completed}/{stream.offered}",
            stream.dropped,
            stream.missed,
            stream.p50_s * 1e3,
            stream.p95_s * 1e3,
            stream.p99_s * 1e3,
            stream.goodput_fps,
        ]
        for stream in report.streams
    ]
    qos = (report.qos or {}).get("kind", "none")
    print(
        render_table(
            ["stream", "model", "done/offered", "drops", "misses",
             "p50_ms", "p95_ms", "p99_ms", "goodput_fps"],
            rows,
            title=(
                f"serving {report.scenario!r} on {report.platform}"
                f" ({report.policy} policy, qos={qos},"
                f" {report.frames} frame slot(s))"
            ),
        )
    )
    print()
    print(
        f"makespan {report.makespan_s * 1e3:.3f} ms;"
        f" {report.completed}/{report.offered} frames completed,"
        f" {report.dropped} dropped, {report.missed} missed;"
        f" p95 {report.p95_s * 1e3:.3f} ms,"
        f" goodput {report.goodput_fps:.2f} fps"
    )
    _print_cache_line(session)


def _cmd_serve(args) -> int:
    from repro.serving import ArrivalTrace
    from repro.serving.slo import (
        apply_trace,
        explore_slo,
        scenario_at_rate,
        trace_scenario,
    )

    platforms = tuple(args.platforms or ())
    if args.explore:
        # Reject rather than silently ignore single-run-only options.
        for flag, value in (
            ("--trace", args.trace),
            ("--save-trace", args.save_trace),
            ("--trace-out", args.trace_out),
            ("--rate", args.rate),
        ):
            if value is not None:
                raise ConfigError(
                    f"--explore and {flag} are exclusive ({flag} applies"
                    " to a single serving run)"
                )
        if args.streaming:
            raise ConfigError(
                "--explore and --streaming are exclusive (exploration runs"
                " through the sweep engine)"
            )
    qos = _parse_qos(args.qos) if args.qos else None
    platform = platforms[0] if platforms else None
    scenario = _scenario_from_args(args, platform, "serve")
    if qos is not None:
        scenario = dataclasses.replace(scenario, qos=qos)

    if args.explore:
        if not args.rates:
            raise ConfigError("--explore needs --rates R1,R2,...")
        if not platforms:
            raise ConfigError("--explore needs -p/--platform")
        percentiles = {"p50": 50.0, "p95": 95.0, "p99": 99.0}
        session = Session()
        report = explore_slo(
            scenario,
            platforms,
            _parse_rates(args.rates),
            slo_s=args.slo_ms / 1e3,
            percentile_q=percentiles[args.percentile],
            max_drop_fraction=args.max_drop_fraction,
            seed=args.seed,
            session=session,
            jobs=args.jobs,
            mode=args.search,
            tolerance_hz=args.tolerance_hz,
        )
        if args.json:
            print(report.to_json(indent=2))
            return 0
        rows = [
            [
                point.platform,
                point.rate_hz,
                f"{point.completed}/{point.offered}",
                point.dropped,
                point.missed,
                point.p50_s * 1e3,
                point.p95_s * 1e3,
                point.p99_s * 1e3,
                point.goodput_fps,
                "yes" if point.meets_slo else "NO",
            ]
            for point in report.points
        ]
        print(
            render_table(
                ["platform", "rate_hz", "done/offered", "drops", "misses",
                 "p50_ms", "p95_ms", "p99_ms", "goodput_fps", "slo"],
                rows,
                title=(
                    f"SLO exploration of {report.scenario!r}:"
                    f" {args.percentile} <= {args.slo_ms:g} ms"
                ),
            )
        )
        print()
        for platform_spec, rate in report.max_sustainable.items():
            shown = f"{rate:g} Hz" if rate is not None else "none"
            print(f"max sustainable rate on {platform_spec}: {shown}")
        _print_cache_line(session)
        return 0

    if len(platforms) > 1:
        raise ConfigError("serve runs on one platform; use --explore to sweep")
    if args.rate is not None:
        scenario = scenario_at_rate(scenario, args.rate, seed=args.seed)
    if args.trace:
        scenario = apply_trace(scenario, ArrivalTrace.load(args.trace))
    session = Session()
    stats: dict = {}
    tracer = _make_tracer(args)
    if args.streaming:
        report = session.run_serving_stream(
            scenario, platform or None, stats_out=stats, tracer=tracer
        )
    else:
        report = session.run_serving(
            scenario, platform or None, tracer=tracer
        )
    _save_trace_out(tracer, args, report.scenario)
    if args.save_trace:
        trace_scenario(scenario).save(args.save_trace)
    if args.json:
        print(report.to_json(indent=2))
        return 0
    _print_serving_report(report, session)
    if args.streaming:
        print(
            f"streaming run: {stats.get('events', 0)} events,"
            f" peak {stats.get('peak_live', 0)} live task(s)"
        )
    if args.save_trace:
        print(f"arrival trace written to {args.save_trace}")
    return 0


def _cmd_store_diff(args) -> int:
    import os

    from repro.sweep import ResultStore

    for path in (args.left, args.right):
        # sqlite would silently create a missing file, which would make a
        # mistyped baseline path pass the regression gate vacuously.
        if not os.path.exists(path):
            raise ConfigError(f"result store {path!r} does not exist")
    with ResultStore(args.left) as left, ResultStore(args.right) as right:
        diff = left.diff(right)
    if args.json:
        import json

        print(
            json.dumps(
                {
                    "only_left": list(diff.only_left),
                    "only_right": list(diff.only_right),
                    "changed": list(diff.changed),
                    "unchanged": list(diff.unchanged),
                    "identical": diff.identical,
                },
                indent=2,
            )
        )
    else:
        print(
            f"store diff: {len(diff.unchanged)} unchanged,"
            f" {len(diff.changed)} changed,"
            f" {len(diff.only_left)} only in {args.left},"
            f" {len(diff.only_right)} only in {args.right}"
        )
        for request_id in diff.changed:
            print(f"  changed: {request_id}")
    if diff.changed:
        print(
            "regression gate: result payloads changed for stored requests",
            file=sys.stderr,
        )
        return 1
    return 0


def _build_sweep_grid(args):
    """Expand the sweep grid a ``sweep``-shaped argparse namespace names."""
    from repro.sweep import SweepSpec, expand

    gemms = tuple(_parse_gemm(text) for text in (args.gemms or ()))
    scenarios = tuple(
        _load_scenario_file(path) for path in (args.scenarios or ())
    )
    spec = SweepSpec(
        platforms=tuple(args.platforms),
        models=tuple(args.models or ()),
        gemms=gemms,
        scenarios=scenarios,
        dataflows=tuple(args.dataflows) if args.dataflows else (None,),
        schedulers=tuple(args.schedulers) if args.schedulers else (None,),
        gemm_dtype=args.dtype,
        tag=args.tag,
    )
    return expand(spec)


def _print_sweep_result(grid, result, workers_label, store, as_json) -> int:
    if as_json:
        print(result.to_json(indent=2))
        return 0
    rows = []
    for point, report in zip(grid.points, result.reports):
        request = point.request
        if request.kind in ("scenario", "serving"):
            workload = request.scenario.name
            ms = report.avg_frame_latency_ms
        elif request.kind == "model":
            workload = request.model
            ms = report.total_ms
        else:
            workload = f"{report.m}x{report.n}x{report.k}"
            ms = report.milliseconds
        rows.append(
            [
                point.request_id,
                request.platform,
                workload,
                request.dataflow or "-",
                request.scheduler or "-",
                ms,
                "store" if point.request_id in result.loaded else "run",
            ]
        )
    print(
        render_table(
            ["request", "platform", "workload", "dataflow", "scheduler",
             "ms", "source"],
            rows,
            title=(
                f"sweep: {len(grid)} requests, {workers_label},"
                f" {len(result.executed)} simulated,"
                f" {len(result.loaded)} loaded from store"
            ),
        )
    )
    print()
    stats = result.cache_stats
    print(
        f"merged GEMM cache: {stats.hits} hits / {stats.misses} misses"
        f" ({stats.hit_rate:.0%} hit rate),"
        f" {stats.window_hits} window hits"
    )
    if store is not None:
        print(f"result store: {store.path} ({len(store)} results)")
    return 0


def _cmd_sweep(args) -> int:
    from repro.sweep import ResultStore, run_sweep

    grid = _build_sweep_grid(args)
    session = Session()
    store = ResultStore(args.store) if args.store else None
    try:
        result = run_sweep(
            grid,
            jobs=args.jobs,
            store=store,
            resume=args.resume,
            session=session,
        )
        return _print_sweep_result(
            grid, result, f"{args.jobs} worker(s)", store, args.json
        )
    finally:
        if store is not None:
            store.close()


def _cmd_cluster_serve(args) -> int:
    from repro.cluster import ClusterServer, serve_stdio

    if args.stdio:
        serve_stdio(jobs=args.jobs, cache_path=args.cache)
        return 0
    server = ClusterServer(
        host=args.host, port=args.port, jobs=args.jobs, cache_path=args.cache
    )
    host, port = server.start()
    print(
        f"cluster server listening on {host}:{port}"
        f" (jobs={args.jobs}, protocol v{_protocol_version()})",
        flush=True,
    )
    try:
        server.wait()
    except KeyboardInterrupt:
        print("cluster server interrupted; shutting down", file=sys.stderr)
        server.close()
    return 0


def _protocol_version() -> int:
    from repro.cluster import PROTOCOL_VERSION

    return PROTOCOL_VERSION


def _cmd_cluster_status(args) -> int:
    from repro.cluster import ClusterClient

    with ClusterClient(args.address) as client:
        status = client.status()
    if args.json:
        import json

        print(json.dumps(status, indent=2))
        return 0
    cache = status["cache"]
    print(
        f"cluster server {status['address']}: {status['state']}"
        f" (protocol v{status['protocol']}, {status['jobs']} worker(s))"
    )
    print(
        f"  submissions: {status['submissions']}"
        f" ({status['points']} points, {status['inflight']} in flight)"
    )
    print(
        f"  cache: {cache['timings']} timings / {cache['windows']} windows;"
        f" {cache['hits']} hits / {cache['misses']} misses"
    )
    frames = status.get("frames")
    if frames:
        print(
            f"  frames: {frames['offered']} offered,"
            f" {frames['completed']} completed, {frames['dropped']} dropped,"
            f" {frames['missed']} missed, {frames['preempted']} preempted"
        )
    return 0


def _cmd_cluster_metrics(args) -> int:
    from repro.cluster import ClusterClient
    from repro.obs import merge_snapshots, render_prometheus

    snapshots = []
    for address in args.addresses:
        with ClusterClient(address) as client:
            snapshots.append(client.metrics()["metrics"])
    merged = snapshots[0]
    for snapshot in snapshots[1:]:
        merged = merge_snapshots(merged, snapshot)
    if args.json:
        import json

        print(json.dumps(merged, indent=2, sort_keys=True))
        return 0
    print(render_prometheus(merged), end="")
    return 0


def _cmd_cluster_sweep(args) -> int:
    from repro.cluster import run_sweep_remote
    from repro.sweep import ResultStore

    grid = _build_sweep_grid(args)
    session = Session()
    store = ResultStore(args.store) if args.store else None
    try:
        result = run_sweep_remote(
            grid,
            args.servers,
            store=store,
            resume=args.resume,
            session=session,
        )
        return _print_sweep_result(
            grid,
            result,
            f"{len(args.servers)} server(s)",
            store,
            args.json,
        )
    finally:
        if store is not None:
            store.close()


def _cmd_cluster_serving(args) -> int:
    from repro.cluster import run_serving_split

    if bool(args.servers) == bool(args.local):
        raise ConfigError(
            "cluster serving needs either --server ADDR (remote) or"
            " --local (in-process split), not both"
        )
    platforms = tuple(args.platforms or ())
    if len(platforms) > 1:
        raise ConfigError("cluster serving takes one -p/--platform")
    platform = platforms[0] if platforms else None
    qos = _parse_qos(args.qos) if args.qos else None
    scenario = _scenario_from_args(args, platform, "cluster serving")
    if qos is not None:
        scenario = dataclasses.replace(scenario, qos=qos)
    if args.rate is not None:
        from repro.serving.slo import scenario_at_rate

        scenario = scenario_at_rate(scenario, args.rate, seed=args.seed)
    session = Session()
    report = run_serving_split(
        scenario,
        platform,
        partitions=args.partitions,
        servers=args.servers or None,
        session=session if not args.servers else None,
    )
    if args.json:
        print(report.to_json(indent=2))
        return 0
    _print_serving_report(report, session)
    return 0


def _cmd_cluster_signal(args, verb: str) -> int:
    from repro.cluster import ClusterClient

    with ClusterClient(args.address) as client:
        response = client.drain() if verb == "drain" else client.shutdown()
    print(f"cluster server {args.address}: {response.get('state', verb)}")
    return 0


def _cmd_cluster(args) -> int:
    if args.cluster_command == "serve":
        return _cmd_cluster_serve(args)
    if args.cluster_command == "status":
        return _cmd_cluster_status(args)
    if args.cluster_command == "metrics":
        return _cmd_cluster_metrics(args)
    if args.cluster_command == "sweep":
        return _cmd_cluster_sweep(args)
    if args.cluster_command == "serving":
        return _cmd_cluster_serving(args)
    if args.cluster_command in ("drain", "shutdown"):
        return _cmd_cluster_signal(args, args.cluster_command)
    raise AssertionError("unreachable")


def _load_fuzz_source(path: str):
    """Load a ``fuzz_reproducer`` or bare ``fuzz_case`` JSON file."""
    from repro.fuzz import FuzzCase, Reproducer

    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as error:
        raise ConfigError(f"cannot read fuzz file {path!r}: {error}")
    except json.JSONDecodeError as error:
        raise ConfigError(f"fuzz file {path!r} is not valid JSON: {error}")
    if not isinstance(data, dict):
        raise ConfigError(f"fuzz file {path!r} must hold a JSON object")
    if data.get("kind") == "fuzz_reproducer":
        return Reproducer.from_dict(data)
    return FuzzCase.from_dict(data)


def _print_fuzz_violations(prefix: str, violations) -> None:
    for violation in violations:
        print(f"{prefix}{violation.oracle}: {violation.message}")


def _cmd_fuzz_run(args) -> int:
    from repro.fuzz import open_corpus, run_campaign

    store = open_corpus(args.store)
    try:
        report = run_campaign(
            args.seed,
            args.batch,
            start=args.start,
            store=store,
            resume=args.resume,
            shrink=args.shrink,
            inject=args.inject,
            differential=args.differential,
            servers=args.servers or None,
        )
    finally:
        if store is not None:
            store.close()
    if args.reproducer_dir:
        import os

        os.makedirs(args.reproducer_dir, exist_ok=True)
        for record in report.failures:
            if record.reproducer is not None:
                record.reproducer.save(
                    os.path.join(
                        args.reproducer_dir, f"{record.case_id}.json"
                    )
                )
    if args.json:
        print(report.to_json(indent=2))
        return 1 if report.failures else 0
    rows = [
        [
            record.index,
            record.case_id,
            record.family,
            record.status,
            ",".join(record.oracles) or "-",
        ]
        for record in report.records
    ]
    print(
        render_table(
            ["index", "case", "family", "status", "oracles"],
            rows,
            title=(
                f"fuzz campaign seed={report.campaign_seed}:"
                f" {report.batch} case(s) from index {report.start}"
                f" ({report.executed} executed, {report.loaded} resumed)"
            ),
        )
    )
    print()
    families = ", ".join(
        f"{family}={count}" for family, count in report.families().items()
    )
    print(f"families: {families or 'none'}")
    if report.failures:
        print(f"{len(report.failures)} case(s) violated an invariant:")
        for record in report.failures:
            print(f"  {record.case_id}: {', '.join(record.oracles)}")
            if record.reproducer is not None:
                shrunk = record.reproducer.case
                print(
                    f"    shrunk to {shrunk.n_streams} stream(s),"
                    f" {shrunk.n_frames} frame(s)"
                )
        return 1
    print("all invariants held")
    return 0


def _cmd_fuzz_replay(args) -> int:
    from repro.fuzz import Reproducer, replay_reproducer

    source = _load_fuzz_source(args.file)
    outcome = replay_reproducer(source)
    expected = (
        source.oracles if isinstance(source, Reproducer) else ()
    )
    if args.json:
        print(
            json.dumps(
                {
                    "case_id": outcome.case.case_id,
                    "ok": outcome.ok,
                    "oracles": list(outcome.failing_oracles),
                    "expected": list(expected),
                    "violations": [
                        violation.to_dict()
                        for violation in outcome.violations
                    ],
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0 if outcome.ok else 1
    if outcome.ok:
        print(f"case {outcome.case.case_id}: all oracles held")
        if expected:
            print(
                f"warning: reproducer expected {', '.join(expected)} but"
                " the violation no longer reproduces",
                file=sys.stderr,
            )
        return 0
    print(
        f"case {outcome.case.case_id} violated:"
        f" {', '.join(outcome.failing_oracles)}"
    )
    _print_fuzz_violations("  ", outcome.violations)
    return 1


def _cmd_fuzz_shrink(args) -> int:
    from repro.fuzz import Reproducer, shrink_case

    source = _load_fuzz_source(args.file)
    case = source.case if isinstance(source, Reproducer) else source
    oracles = tuple(args.oracles) if args.oracles else None
    reproducer = shrink_case(case, oracles)
    reproducer.save(args.output)
    shrunk = reproducer.case
    print(
        f"shrunk {case.case_id} from {case.n_streams} stream(s)/"
        f"{case.n_frames} frame(s) to {shrunk.n_streams} stream(s)/"
        f"{shrunk.n_frames} frame(s); still violates:"
        f" {', '.join(reproducer.oracles)}"
    )
    print(f"reproducer written to {args.output}")
    return 0


def _cmd_fuzz(args) -> int:
    if args.fuzz_command == "run":
        return _cmd_fuzz_run(args)
    if args.fuzz_command == "replay":
        return _cmd_fuzz_replay(args)
    if args.fuzz_command == "shrink":
        return _cmd_fuzz_shrink(args)
    raise AssertionError("unreachable")


def _cmd_run(names: list[str]) -> int:
    if names == ["all"]:
        names = list(EXPERIMENT_RUNNERS)
    failures = 0
    for name in names:
        runner = EXPERIMENT_RUNNERS.get(name)
        if runner is None:
            print(f"unknown experiment {name!r}; try 'python -m repro list'")
            return 2
        report = runner()
        print(report.render())
        print()
        if not report.all_passed:
            failures += 1
    return 1 if failures else 0


def _cmd_export(output: str, names: list[str] | None) -> int:
    written = export_all(output, names)
    for name, path in written.items():
        print(f"{name:14s} -> {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SMA (DAC 2020) reproduction: simulate and regenerate",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiments, platforms, and models")

    catalog_parser = sub.add_parser(
        "catalog", help="inspect the real-hardware device catalog"
    )
    catalog_sub = catalog_parser.add_subparsers(
        dest="catalog_command", required=True
    )
    clist_parser = catalog_sub.add_parser(
        "list", help="list catalog devices with area/TDP and fingerprints"
    )
    clist_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    cshow_parser = catalog_sub.add_parser(
        "show", help="show one device spec in full"
    )
    cshow_parser.add_argument("name", help="device name or alias, e.g. a100")
    cshow_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    sim_parser = sub.add_parser(
        "simulate", help="run MODEL on PLATFORM(s) via the Session facade"
    )
    sim_parser.add_argument("model", help="model spec, e.g. mask_rcnn")
    sim_parser.add_argument(
        "platforms", nargs="+", help="platform specs, e.g. sma:3 gpu-tc"
    )
    sim_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    bench_parser = sub.add_parser(
        "bench", help="time one GEMM across platforms"
    )
    bench_parser.add_argument("gemm", help="N or MxNxK, e.g. 4096 or 4096x1024x4096")
    bench_parser.add_argument(
        "-p", "--platform", action="append", dest="platforms",
        help=f"platform spec (repeatable); default: {' '.join(BENCH_PLATFORMS)}",
    )
    bench_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    def add_engine_flag(parser) -> None:
        """Timeline-engine selector shared by scenario/serve/sweep.

        Implemented by exporting ``REPRO_ENGINE`` rather than threading a
        parameter: both engines are bit-identical, so the choice must not
        enter request fingerprints, and the environment variable reaches
        sweep worker processes for free.
        """
        parser.add_argument(
            "--engine", default=None, choices=ENGINE_NAMES,
            help="timeline engine (default: $REPRO_ENGINE or 'scalar';"
            " both produce bit-identical results)",
        )

    def add_sweep_axes(parser) -> None:
        """Workload/store options shared by `sweep` and `cluster sweep`."""
        parser.add_argument(
            "-p", "--platform", action="append", dest="platforms",
            required=True,
            help="platform spec (repeatable); ranges like sma:2..4 expand",
        )
        parser.add_argument(
            "-m", "--model", action="append", dest="models",
            help="model spec (repeatable), e.g. mask_rcnn",
        )
        parser.add_argument(
            "-g", "--gemm", action="append", dest="gemms",
            help="GEMM workload (repeatable): N or MxNxK",
        )
        parser.add_argument(
            "--dataflow", action="append", dest="dataflows",
            help="dataflow override axis (repeatable): ws, sbws, os",
        )
        parser.add_argument(
            "--scheduler", action="append", dest="schedulers",
            help="scheduler override axis (repeatable): gto, lrr, sma_rr",
        )
        parser.add_argument(
            "--dtype", default="fp16", help="dtype of bare GEMM sizes",
        )
        parser.add_argument(
            "--store", default=None, metavar="PATH",
            help="sqlite result store; results persist as they finish",
        )
        parser.add_argument(
            "--resume", action="store_true",
            help="skip requests already in the store (requires --store)",
        )
        parser.add_argument(
            "-S", "--scenario", action="append", dest="scenarios",
            metavar="FILE",
            help="scenario JSON file (repeatable); re-targeted per platform",
        )
        parser.add_argument(
            "--tag", default=None, help="label for reports"
        )
        parser.add_argument(
            "--json", action="store_true", help="emit machine-readable JSON"
        )

    sweep_parser = sub.add_parser(
        "sweep",
        help="expand a spec grid and run it, optionally sharded/resumable",
    )
    add_sweep_axes(sweep_parser)
    add_engine_flag(sweep_parser)
    sweep_parser.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes; caches merge back on join",
    )

    scenario_parser = sub.add_parser(
        "scenario",
        help="schedule N concurrent model streams on one platform timeline",
    )
    scenario_parser.add_argument(
        "-p", "--platform", default=None,
        help="platform spec, e.g. sma:3 (overrides --spec's platform)",
    )
    scenario_parser.add_argument(
        "-s", "--stream", action="append", dest="streams",
        metavar="MODEL[@k=v,...]",
        help="stream spec (repeatable): model plus name/prio/skip/period/"
        "deadline options, e.g. 'mask_rcnn@prio=3,deadline=0.2'",
    )
    scenario_parser.add_argument(
        "--frames", type=int, default=None,
        help="frames to simulate (default 1; overrides --spec)",
    )
    scenario_parser.add_argument(
        "--policy", default=None,
        choices=("fifo", "priority", "exclusive", "exclusive_preempt"),
        help="scheduling policy (default fifo; overrides --spec)",
    )
    scenario_parser.add_argument(
        "--name", default=None,
        help="scenario name for reports (overrides --spec)",
    )
    scenario_parser.add_argument(
        "--spec", default=None, metavar="FILE",
        help="load the scenario from a ScenarioSpec JSON file",
    )
    add_engine_flag(scenario_parser)
    scenario_parser.add_argument(
        "--trace-out", default=None, metavar="FILE", dest="trace_out",
        help="write a Chrome/Perfetto trace of the run (ui.perfetto.dev)",
    )
    scenario_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    serve_parser = sub.add_parser(
        "serve",
        help="serve streams open-loop (arrival traces, QoS, SLO explorer)",
    )
    serve_parser.add_argument(
        "-p", "--platform", action="append", dest="platforms",
        help="platform spec (repeatable with --explore), e.g. sma:3",
    )
    serve_parser.add_argument(
        "-s", "--stream", action="append", dest="streams",
        metavar="MODEL[@k=v,...]",
        help="stream spec (repeatable): scenario keys plus rate/arrival/"
        "seed, e.g. 'mask_rcnn@prio=3,deadline=0.2,rate=20'",
    )
    serve_parser.add_argument(
        "--spec", default=None, metavar="FILE",
        help="load the scenario from a ScenarioSpec JSON file",
    )
    serve_parser.add_argument(
        "--frames", type=int, default=None,
        help="frame slots to simulate per stream (overrides --spec)",
    )
    serve_parser.add_argument(
        "--policy", default=None,
        choices=("fifo", "priority", "exclusive", "exclusive_preempt"),
        help="scheduling policy (default fifo; overrides --spec)",
    )
    serve_parser.add_argument(
        "--name", default=None, help="scenario name (overrides --spec)",
    )
    serve_parser.add_argument(
        "--qos", default=None, metavar="KIND[:PARAM]",
        help="admission control: drop_late[:slack_s], abort_late[:slack_s],"
        " queue_cap:N, shed:N[:min_prio]",
    )
    serve_parser.add_argument(
        "--rate", type=float, default=None, metavar="HZ",
        help="offer every stream at this Poisson rate (overrides periods)",
    )
    serve_parser.add_argument(
        "--seed", type=int, default=0, help="arrival seed for --rate/--explore",
    )
    serve_parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="replay a recorded ArrivalTrace JSON file",
    )
    serve_parser.add_argument(
        "--save-trace", default=None, metavar="FILE", dest="save_trace",
        help="write the materialized arrival trace for later --trace replay",
    )
    serve_parser.add_argument(
        "--explore", action="store_true",
        help="sweep --rates across every -p platform and report SLO limits",
    )
    serve_parser.add_argument(
        "--rates", default=None, metavar="R1,R2,...",
        help="arrival rates (Hz) for --explore (the bracket for bisect)",
    )
    serve_parser.add_argument(
        "--search", default="grid", choices=("grid", "bisect"),
        help="--explore strategy: evaluate every rate, or bisect the"
        " bracket to the max sustainable rate (default grid)",
    )
    serve_parser.add_argument(
        "--tolerance-hz", type=float, default=1.0, dest="tolerance_hz",
        help="bisect convergence tolerance in Hz (default 1)",
    )
    serve_parser.add_argument(
        "--slo-ms", type=float, default=100.0, dest="slo_ms",
        help="latency SLO in milliseconds (default 100)",
    )
    serve_parser.add_argument(
        "--percentile", default="p95", choices=("p50", "p95", "p99"),
        help="tail percentile judged against the SLO (default p95)",
    )
    serve_parser.add_argument(
        "--max-drop-fraction", type=float, default=0.0,
        dest="max_drop_fraction",
        help="largest admissible drop fraction per point (default 0)",
    )
    serve_parser.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes for --explore",
    )
    serve_parser.add_argument(
        "--streaming", action="store_true",
        help="consume arrivals as a bounded-memory stream (P2 percentile"
        " sketches instead of per-frame records; same counts/makespan)",
    )
    add_engine_flag(serve_parser)
    serve_parser.add_argument(
        "--trace-out", default=None, metavar="FILE", dest="trace_out",
        help="write a Chrome/Perfetto trace of the run (ui.perfetto.dev)",
    )
    serve_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    cluster_parser = sub.add_parser(
        "cluster",
        help="long-lived simulation service: serve, submit, introspect",
    )
    cluster_sub = cluster_parser.add_subparsers(
        dest="cluster_command", required=True
    )

    cserve_parser = cluster_sub.add_parser(
        "serve", help="run a cluster server (warm worker pool, shared cache)"
    )
    cserve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default loopback)"
    )
    cserve_parser.add_argument(
        "--port", type=int, default=7070,
        help="TCP port (0 picks an ephemeral one; default 7070)",
    )
    cserve_parser.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes in the warm pool",
    )
    cserve_parser.add_argument(
        "--cache", default=None, metavar="PATH",
        help="pre-warm the pool cache from a saved TimingCache file",
    )
    cserve_parser.add_argument(
        "--stdio", action="store_true",
        help="speak the protocol over stdin/stdout instead of TCP",
    )

    cstatus_parser = cluster_sub.add_parser(
        "status", help="query a running server's state and cache counters"
    )
    cstatus_parser.add_argument("address", help="server address host:port")
    cstatus_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    cmetrics_parser = cluster_sub.add_parser(
        "metrics",
        help="merged metrics across servers (Prometheus text or JSON)",
    )
    cmetrics_parser.add_argument(
        "addresses", nargs="+", metavar="ADDRESS",
        help="server address host:port (repeatable; snapshots merge)",
    )
    cmetrics_parser.add_argument(
        "--json", action="store_true",
        help="emit the merged snapshot as JSON instead of Prometheus text",
    )

    csweep_parser = cluster_sub.add_parser(
        "sweep", help="run a sweep sharded across cluster servers"
    )
    add_sweep_axes(csweep_parser)
    csweep_parser.add_argument(
        "--server", action="append", dest="servers", required=True,
        metavar="HOST:PORT",
        help="cluster server (repeatable); shards round-robin across them",
    )

    cserving_parser = cluster_sub.add_parser(
        "serving",
        help="split one serving trace across platform instances and merge",
    )
    cserving_parser.add_argument(
        "-p", "--platform", action="append", dest="platforms",
        help="platform spec each partition instantiates, e.g. sma:3",
    )
    cserving_parser.add_argument(
        "-s", "--stream", action="append", dest="streams",
        metavar="MODEL[@k=v,...]",
        help="stream spec (repeatable), as in `repro serve`",
    )
    cserving_parser.add_argument(
        "--spec", default=None, metavar="FILE",
        help="load the scenario from a ScenarioSpec JSON file",
    )
    cserving_parser.add_argument(
        "--frames", type=int, default=None,
        help="frame slots per stream (overrides --spec)",
    )
    cserving_parser.add_argument(
        "--policy", default=None,
        choices=("fifo", "priority", "exclusive", "exclusive_preempt"),
        help="scheduling policy (overrides --spec)",
    )
    cserving_parser.add_argument(
        "--name", default=None, help="scenario name (overrides --spec)"
    )
    cserving_parser.add_argument(
        "--qos", default=None, metavar="KIND[:PARAM]",
        help="admission control, as in `repro serve`",
    )
    cserving_parser.add_argument(
        "--rate", type=float, default=None, metavar="HZ",
        help="offer every stream at this Poisson rate",
    )
    cserving_parser.add_argument(
        "--seed", type=int, default=0, help="arrival seed for --rate"
    )
    cserving_parser.add_argument(
        "--server", action="append", dest="servers", metavar="HOST:PORT",
        help="cluster server (repeatable); one partition per server",
    )
    cserving_parser.add_argument(
        "--local", action="store_true",
        help="split in-process instead of dispatching to servers",
    )
    cserving_parser.add_argument(
        "--partitions", type=int, default=None,
        help="partition count (default: server count, or 2 with --local)",
    )
    cserving_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    for verb, text in (
        ("drain", "stop a server accepting new submissions"),
        ("shutdown", "gracefully stop a server (waits for in-flight work)"),
    ):
        signal_parser = cluster_sub.add_parser(verb, help=text)
        signal_parser.add_argument("address", help="server address host:port")

    fuzz_parser = sub.add_parser(
        "fuzz",
        help="seeded adversarial fuzzing against the invariant oracles",
    )
    fuzz_sub = fuzz_parser.add_subparsers(dest="fuzz_command", required=True)

    frun_parser = fuzz_sub.add_parser(
        "run", help="run a campaign batch; exit 1 on any oracle violation"
    )
    frun_parser.add_argument(
        "--seed", type=int, required=True,
        help="campaign seed; every case derives from (seed, index)",
    )
    frun_parser.add_argument(
        "--batch", type=int, required=True, help="number of cases to run"
    )
    frun_parser.add_argument(
        "--start", type=int, default=0,
        help="first campaign index (default 0)",
    )
    frun_parser.add_argument(
        "--store", default=None, metavar="PATH",
        help="sqlite corpus; executed cases persist as they finish",
    )
    frun_parser.add_argument(
        "--resume", action="store_true",
        help="skip indices already in the corpus (requires --store)",
    )
    frun_parser.add_argument(
        "--no-shrink", action="store_false", dest="shrink",
        help="record failures without delta-debugging them",
    )
    frun_parser.add_argument(
        "--inject", default=None, choices=("invert_priority",),
        help="plant a known fault (oracle self-test; must be caught)",
    )
    frun_parser.add_argument(
        "--differential", action="store_true",
        help="run every case through both timeline engines; any report"
        " difference is an engine_divergence violation",
    )
    frun_parser.add_argument(
        "--server", action="append", dest="servers", metavar="HOST:PORT",
        help="cluster server (repeatable); shards fan out across them",
    )
    frun_parser.add_argument(
        "--reproducer-dir", default=None, metavar="DIR",
        dest="reproducer_dir",
        help="write each failure's shrunk reproducer JSON here",
    )
    frun_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    freplay_parser = fuzz_sub.add_parser(
        "replay",
        help="re-run a reproducer (or case) file; exit 1 if it still fails",
    )
    freplay_parser.add_argument(
        "file", help="fuzz_reproducer or fuzz_case JSON file"
    )
    freplay_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    fshrink_parser = fuzz_sub.add_parser(
        "shrink", help="delta-debug a failing case to a minimal reproducer"
    )
    fshrink_parser.add_argument(
        "file", help="fuzz_reproducer or fuzz_case JSON file"
    )
    fshrink_parser.add_argument(
        "-o", "--output", required=True, metavar="FILE",
        help="where to write the shrunk reproducer JSON",
    )
    fshrink_parser.add_argument(
        "--oracle", action="append", dest="oracles", metavar="NAME",
        help="chase only these oracles (default: whatever the case fails)",
    )

    diff_parser = sub.add_parser(
        "store-diff",
        help="diff two result stores; exit 1 when stored results changed",
    )
    diff_parser.add_argument("left", help="baseline store (e.g. previous CI run)")
    diff_parser.add_argument("right", help="current store")
    diff_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    run_parser = sub.add_parser("run", help="run experiments and print tables")
    run_parser.add_argument("names", nargs="+", help="experiment names or 'all'")

    export_parser = sub.add_parser("export", help="export experiments as CSV")
    export_parser.add_argument("-o", "--output", default="results")
    export_parser.add_argument("names", nargs="*", default=None)

    args = parser.parse_args(argv)
    if getattr(args, "engine", None):
        os.environ[ENGINE_ENV] = args.engine
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "catalog":
            return _cmd_catalog(args)
        if args.command == "simulate":
            return _cmd_simulate(args.model, args.platforms, args.json)
        if args.command == "bench":
            return _cmd_bench(
                args.gemm, args.platforms or list(BENCH_PLATFORMS), args.json
            )
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "scenario":
            return _cmd_scenario(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "cluster":
            return _cmd_cluster(args)
        if args.command == "fuzz":
            return _cmd_fuzz(args)
        if args.command == "store-diff":
            return _cmd_store_diff(args)
        if args.command == "run":
            return _cmd_run(args.names)
        if args.command == "export":
            return _cmd_export(args.output, args.names or None)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
