"""The cluster server daemon: a long-lived simulation service.

A :class:`ClusterServer` owns one :class:`~repro.cluster.pool.WarmPool`
(warm process pool + shared timing cache) and answers the wire protocol
of :mod:`repro.cluster.protocol` over TCP (``repro cluster serve``) or a
plain byte-stream pair (``--stdio``, or in-process tests). Many clients
may connect over its lifetime; they all feed the same pool, which is the
whole point — the second submission finds the cache the first one filled.

Lifecycle: ``serving`` accepts everything; ``drain`` flips to
``draining``, where submissions are refused with a typed ``unavailable``
error while status/introspection keep working; ``shutdown`` drains,
waits for in-flight submissions to finish, acknowledges, and stops the
listener — a graceful exit that never abandons accepted work.
"""

from __future__ import annotations

import socketserver
import threading

from repro.cluster import protocol
from repro.cluster.pool import WarmPool
from repro.errors import (
    ClusterProtocolError,
    ConfigError,
    ProtocolVersionError,
)
from repro.gemm.cache import TimingCache
from repro.obs.selfprof import profile_phase


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via TCP tests
        self.server.cluster.serve_stream(self.rfile, self.wfile)


class _TcpServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    cluster: "ClusterServer"


class ClusterServer:
    """A long-lived simulation service over one warm pool.

    ``port=0`` binds an ephemeral port (tests); :meth:`start` returns the
    bound ``(host, port)``. ``cache_path`` pre-warms the pool cache from
    a :meth:`~repro.gemm.cache.TimingCache.save` file when it exists.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: int = 1,
        cache: TimingCache | None = None,
        cache_path=None,
    ) -> None:
        self.host = host
        self.port = port
        self.pool = WarmPool(jobs=jobs, cache=cache)
        if cache_path is not None:
            from pathlib import Path

            if Path(cache_path).exists():
                self.pool.cache.load(cache_path)
        self.state = "serving"
        self._tcp: _TcpServer | None = None
        self._thread: threading.Thread | None = None
        self._inflight = 0
        self._idle = threading.Condition()
        self._stopped = threading.Event()

    # -- lifecycle ---------------------------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Bind and serve on a background thread; returns (host, port)."""
        if self._tcp is not None:
            raise ConfigError("cluster server is already started")
        self._tcp = _TcpServer((self.host, self.port), _Handler)
        self._tcp.cluster = self
        self.host, self.port = self._tcp.server_address[:2]
        self._thread = threading.Thread(
            target=self._tcp.serve_forever, name="cluster-server", daemon=True
        )
        self._thread.start()
        return self.host, self.port

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def wait(self) -> None:
        """Block until the server is stopped (shutdown verb or close)."""
        self._stopped.wait()
        if self._thread is not None:
            self._thread.join()

    def close(self) -> None:
        """Stop listening and release the pool; idempotent."""
        tcp, self._tcp = self._tcp, None
        if tcp is not None:
            tcp.shutdown()
            tcp.server_close()
        self.pool.close()
        self._stopped.set()

    def __enter__(self) -> "ClusterServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _stop_async(self) -> None:
        # ThreadingTCPServer.shutdown must not run on the serve_forever
        # thread; handler threads are distinct, but detach anyway so the
        # shutdown acknowledgement is written before the listener dies.
        threading.Thread(target=self.close, daemon=True).start()

    # -- protocol ----------------------------------------------------------------------
    def serve_stream(self, rfile, wfile) -> None:
        """Answer one peer's messages until EOF (TCP handler and stdio)."""
        while True:
            line = rfile.readline(protocol.MAX_FRAME_BYTES + 2)
            if not line:
                return
            if not line.strip():
                continue
            response, stop = self.handle_line(line)
            try:
                frame = protocol.encode_message(response)
            except ClusterProtocolError as error:
                # E.g. a result too large for one frame: answer with a
                # typed error rather than dying without a reply.
                frame = protocol.encode_message(
                    protocol.error_message("protocol", str(error))
                )
                stop = False
            wfile.write(frame)
            wfile.flush()
            if stop:
                self._stop_async()
                return

    def handle_line(self, line: bytes | str) -> tuple[dict, bool]:
        """Decode and answer one frame; returns (response, stop-serving)."""
        try:
            message = protocol.decode_message(line)
            protocol.check_version(message)
            return self._dispatch(message)
        except ProtocolVersionError as error:
            return protocol.error_message("version_mismatch", str(error)), False
        except ClusterProtocolError as error:
            return protocol.error_message("protocol", str(error)), False

    def _dispatch(self, message: dict) -> tuple[dict, bool]:
        verb = message["type"]
        if verb == "hello":
            return self._welcome(), False
        if verb == "status":
            return self._status(), False
        if verb == "metrics":
            return self._metrics(), False
        if verb == "drain":
            with self._idle:
                self.state = "draining"
            return self._ok(), False
        if verb == "shutdown":
            # State flips and the in-flight wait share one lock with
            # submission admission, so a submit either lands before the
            # drain (and is waited for) or is refused — never abandoned.
            with self._idle:
                self.state = "draining"
                self._idle.wait_for(lambda: self._inflight == 0)
                self.state = "stopped"
            return self._ok(), True
        if verb == "submit":
            return self._submit(message)
        if verb == "fuzz":
            return self._fuzz(message)
        return (
            protocol.error_message("protocol", f"unknown verb {verb!r}"),
            False,
        )

    def _submit(self, message: dict) -> tuple[dict, bool]:
        # Admission is atomic with the drain/shutdown state flip: once
        # inflight is bumped here, a concurrent shutdown waits for it.
        with self._idle:
            if self.state != "serving":
                return (
                    protocol.error_message(
                        "unavailable",
                        f"server {self.address} is {self.state}; submissions"
                        " are refused",
                    ),
                    False,
                )
            self._inflight += 1
        try:
            try:
                points = tuple(
                    protocol.point_from_wire(item)
                    for item in message.get("points", ())
                )
                overhead = message.get("framework_overhead_s")
                protocol.verify_points(points, overhead)
            except Exception as error:
                return (
                    protocol.error_message(
                        protocol.error_code_for(error), str(error)
                    ),
                    False,
                )
            try:
                with profile_phase(self.pool.metrics, "rpc_submit"):
                    reports, cache = self.pool.run_points(points, overhead)
                return protocol.result_message(reports, cache), False
            except Exception as error:
                return (
                    protocol.error_message(
                        "internal", f"shard failed: {error}"
                    ),
                    False,
                )
        finally:
            with self._idle:
                self._inflight -= 1
                self._idle.notify_all()

    def _fuzz(self, message: dict) -> tuple[dict, bool]:
        # Same admission discipline as _submit: a fuzz shard accepted
        # before a shutdown is finished, not abandoned.
        with self._idle:
            if self.state != "serving":
                return (
                    protocol.error_message(
                        "unavailable",
                        f"server {self.address} is {self.state}; submissions"
                        " are refused",
                    ),
                    False,
                )
            self._inflight += 1
        try:
            # Deferred: repro.fuzz sits above the cluster layer.
            from repro.fuzz.campaign import run_indices

            try:
                seed = int(message["seed"])
                indices = [int(index) for index in message["indices"]]
                shrink = bool(message.get("shrink", True))
                inject = message.get("inject")
                differential = bool(message.get("differential", False))
            except (KeyError, TypeError, ValueError) as error:
                return (
                    protocol.error_message(
                        "protocol", f"malformed fuzz shard: {error!r}"
                    ),
                    False,
                )
            try:
                with profile_phase(self.pool.metrics, "rpc_fuzz"):
                    records = run_indices(
                        seed,
                        indices,
                        shrink=shrink,
                        inject=inject,
                        differential=differential,
                    )
                return protocol.fuzz_result_message(records), False
            except Exception as error:
                return (
                    protocol.error_message(
                        "internal", f"fuzz shard failed: {error}"
                    ),
                    False,
                )
        finally:
            with self._idle:
                self._inflight -= 1
                self._idle.notify_all()

    # -- responses ---------------------------------------------------------------------
    def _ok(self) -> dict:
        return {
            "v": protocol.PROTOCOL_VERSION,
            "type": "ok",
            "state": self.state,
        }

    def _welcome(self) -> dict:
        return {
            "v": protocol.PROTOCOL_VERSION,
            "type": "welcome",
            "protocol": protocol.PROTOCOL_VERSION,
            "state": self.state,
            "jobs": self.pool.jobs,
        }

    def _status(self) -> dict:
        return {
            "v": protocol.PROTOCOL_VERSION,
            "type": "status",
            "protocol": protocol.PROTOCOL_VERSION,
            "state": self.state,
            "address": self.address,
            "inflight": self._inflight,
            **self.pool.status(),
        }

    def _metrics(self) -> dict:
        return {
            "v": protocol.PROTOCOL_VERSION,
            "type": "metrics",
            "state": self.state,
            "address": self.address,
            "metrics": self.pool.metrics_snapshot(),
        }


def serve_stdio(
    jobs: int = 1, cache_path=None, stdin=None, stdout=None
) -> None:
    """Serve the protocol over stdin/stdout (single-peer transport)."""
    import sys

    server = ClusterServer(jobs=jobs, cache_path=cache_path)
    rfile = stdin if stdin is not None else sys.stdin.buffer
    wfile = stdout if stdout is not None else sys.stdout.buffer
    try:
        server.serve_stream(rfile, wfile)
    finally:
        server.pool.close()


__all__ = ["ClusterServer", "serve_stdio"]
