"""Cross-host dispatch: sweeps sharded and traces split across servers.

Two front-ends over :class:`~repro.cluster.client.ClusterClient`:

* :func:`run_sweep_remote` — shard a sweep grid across one or more
  servers proportionally to each server's reported worker-pool size
  (its ``status`` jobs count), re-dispatching a dead server's shard to
  the survivors,
  merging every returned cache delta into the caller's session cache and
  writing through the caller's :class:`~repro.sweep.store.ResultStore`.
  The returned :class:`~repro.sweep.workers.SweepResult` is bit-identical
  to a local :func:`repro.sweep.run_sweep` of the same grid — stable IDs,
  canonical JSON reports, and a deterministic simulator make the
  transport invisible.

* :func:`run_serving_split` — materialize one scenario's
  :class:`~repro.serving.traces.ArrivalTrace`, split its streams
  round-robin across N platform instances (local, or one per server),
  serve each partition, and merge the per-stream
  :class:`~repro.api.results.ServingReport`\\ s into one report whose
  aggregate percentiles are recomputed over every completed frame.

Both paths go through the content-addressed grid machinery, so remote
execution reuses the same request identities as local runs — a store
written remotely resumes a local sweep and vice versa.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace

from repro.api.results import ServingReport, SimRequest
from repro.api.session import Session
from repro.cluster.client import ClusterClient
from repro.errors import (
    ClusterConnectionError,
    ClusterError,
    ClusterUnavailableError,
    ConfigError,
)
from repro.schedule.streams import ScenarioSpec
from repro.serving.slo import apply_trace, trace_scenario
from repro.sweep.grid import SweepGrid, SweepSpec, expand, grid_from_requests
from repro.sweep.store import ResultStore
from repro.sweep.workers import SweepResult, load_resumable

#: Failures that mean "this server cannot take the shard" (re-dispatch),
#: as opposed to typed config errors that must surface to the caller.
_REDISPATCH_ERRORS = (ClusterConnectionError, ClusterUnavailableError)

#: How long one shard submission may run before its server is presumed
#: dead. Callers with heavier shards pass ``timeout_s`` explicitly — a
#: too-short timeout misclassifies a busy server as a dead one.
DEFAULT_TIMEOUT_S = 600.0


def normalize_servers(servers) -> tuple[str, ...]:
    """Coerce one address or a sequence of addresses into a tuple."""
    if isinstance(servers, str):
        servers = (servers,)
    servers = tuple(servers or ())
    if not servers:
        raise ConfigError("cluster dispatch needs at least one server address")
    return servers


def server_capacities(
    servers: tuple[str, ...], timeout_s: float = DEFAULT_TIMEOUT_S
) -> dict[str, int]:
    """Probe each server's reported worker-pool size (``status``'s jobs).

    Unreachable servers get capacity 0 (they take no shard up front —
    the re-dispatch path still never routes *to* them because a dead
    probe is usually a dead submit). When every probe fails the sweep
    should still be attempted rather than refused on a flaky status
    round, so all capacities fall back to 1 and the submit path's own
    error handling decides.
    """
    capacities: dict[str, int] = {}
    for server in servers:
        try:
            with ClusterClient(server, timeout_s=timeout_s) as client:
                status = client.status()
            capacities[server] = max(1, int(status.get("jobs", 1)))
        except _REDISPATCH_ERRORS:
            capacities[server] = 0
    if all(capacity == 0 for capacity in capacities.values()):
        return {server: 1 for server in servers}
    return capacities


def weighted_assignments(
    points, servers: tuple[str, ...], capacities: dict[str, int]
) -> list[tuple[str, tuple]]:
    """Deal points over servers proportionally to their capacities.

    Each server contributes ``capacity`` slots to a deterministic slot
    ring (address order); points are dealt round-robin over the ring, so
    a 4-job server receives ~4x the points of a 1-job server while
    preserving the sweep's stable, order-independent semantics.
    Zero-capacity servers contribute no slots. Returns ``(server,
    points)`` assignments for the servers that received work.
    """
    slots = [
        server
        for server in servers
        for _ in range(max(0, capacities.get(server, 1)))
    ]
    if not slots:
        slots = list(servers)
    shards: dict[str, list] = {}
    for position, point in enumerate(points):
        shards.setdefault(slots[position % len(slots)], []).append(point)
    return [
        (server, tuple(shards[server]))
        for server in servers
        if shards.get(server)
    ]


def _submit_shards(
    assignments: list[tuple[str, tuple]],
    framework_overhead_s: float | None,
    timeout_s: float = DEFAULT_TIMEOUT_S,
):
    """Run (server, points) assignments concurrently with failure re-dispatch.

    Every shard that fails with a transport/unavailable error is retried
    on the next server that has not itself died, in address order. Only
    when every server is dead does the dispatch raise. Returns (reports
    by request ID, list of cache deltas, dead server addresses).
    """
    dead: set[str] = set()
    reports: dict = {}
    deltas: list = []
    failed: list[tuple] = []

    def submit(server: str, points: tuple):
        with ClusterClient(server, timeout_s=timeout_s) as client:
            return client.submit_points(points, framework_overhead_s)

    with ThreadPoolExecutor(max_workers=max(len(assignments), 1)) as pool:
        futures = [
            (server, points, pool.submit(submit, server, points))
            for server, points in assignments
        ]
        for server, points, future in futures:
            try:
                shard_reports, delta = future.result()
            except _REDISPATCH_ERRORS:
                dead.add(server)
                failed.append(points)
                continue
            reports.update(shard_reports)
            deltas.append(delta)

    for points in failed:
        alive = [
            server for server, _points in assignments if server not in dead
        ]
        placed = False
        for server in alive:
            try:
                shard_reports, delta = submit(server, points)
            except _REDISPATCH_ERRORS:
                dead.add(server)
                continue
            reports.update(shard_reports)
            deltas.append(delta)
            placed = True
            break
        if not placed:
            raise ClusterError(
                f"shard of {len(points)} point(s) could not be placed: all"
                f" {len({s for s, _ in assignments})} server(s) are dead or"
                " draining"
            )
    return reports, deltas, dead


def run_sweep_remote(
    spec: "SweepSpec | SweepGrid",
    servers,
    *,
    store: ResultStore | None = None,
    resume: bool = False,
    session: Session | None = None,
    timeout_s: float = DEFAULT_TIMEOUT_S,
) -> SweepResult:
    """Run a sweep sharded across cluster servers; local semantics apply.

    ``store``/``resume`` behave exactly as in
    :func:`repro.sweep.run_sweep`: resumed points are loaded instead of
    dispatched, and every remotely-computed report is written through as
    it arrives back, so an interrupted remote sweep loses at most its
    in-flight shards. Server cache deltas are merged into the session
    cache on join — the caller's process ends as warm as a local run.
    ``timeout_s`` bounds one shard's round-trip; raise it for shards
    whose simulations legitimately run long, or a healthy-but-busy
    server gets misread as dead.
    """
    servers = normalize_servers(servers)
    grid = expand(spec) if isinstance(spec, SweepSpec) else spec
    if not isinstance(grid, SweepGrid):
        raise ConfigError(
            f"run_sweep_remote expects a SweepSpec or SweepGrid, got {spec!r}"
        )
    if resume and store is None:
        raise ConfigError("resume=True requires a result store")
    session = session if session is not None else Session()

    loaded = load_resumable(grid, store) if resume else {}
    todo = tuple(point for point in grid if point.request_id not in loaded)
    # Capacity-aware sharding: a server running a 4-worker pool reports
    # jobs=4 in its status and takes ~4x the points of a 1-worker one.
    assignments = weighted_assignments(
        todo, servers, server_capacities(servers, timeout_s)
    )
    executed, deltas, _dead = _submit_shards(
        assignments, grid.framework_overhead_s, timeout_s
    )
    for delta in deltas:
        session.cache.merge(delta)
    if store is not None:
        by_id = grid.by_id()
        for request_id, report in executed.items():
            store.put(by_id[request_id], report)

    reports = tuple(
        executed.get(point.request_id, loaded.get(point.request_id))
        for point in grid
    )
    return SweepResult(
        grid=grid,
        reports=reports,
        executed=tuple(
            point.request_id for point in grid if point.request_id in executed
        ),
        loaded=tuple(
            point.request_id for point in grid if point.request_id in loaded
        ),
        cache_stats=session.cache.stats(),
        jobs=len(servers),
    )


# -- serving split ---------------------------------------------------------------------
def split_scenario(
    spec: ScenarioSpec, partitions: int
) -> tuple[ScenarioSpec, ...]:
    """Split one scenario's streams round-robin into replayable partitions.

    The scenario's (seeded) arrivals are materialized into one
    :class:`~repro.serving.traces.ArrivalTrace` first and every partition
    replays its recorded times verbatim, so the split preserves each
    stream's exact release schedule — partition k of N sees the same
    arrivals it would have seen in the unsplit run. Closed-loop streams
    have no pre-computable trace and are rejected.
    """
    if partitions < 1:
        raise ConfigError(f"partitions must be >= 1, got {partitions}")
    partitions = min(partitions, len(spec.streams))
    replayed = apply_trace(spec, trace_scenario(spec))
    subs = []
    for part in range(partitions):
        streams = replayed.streams[part::partitions]
        subs.append(
            replace(
                replayed,
                name=f"{spec.name}#p{part}",
                streams=streams,
            )
        )
    return tuple(subs)


def merge_serving_reports(
    parts,
    *,
    scenario: str,
    stream_order=None,
) -> ServingReport:
    """Merge per-partition serving reports back into one scenario report.

    Stream reports are concatenated (re-ordered to ``stream_order`` when
    given); the aggregate counters and p50/p95/p99 are *recomputed* over
    every completed frame because :class:`ServingReport` derives them from
    its streams — a merged tail percentile is the true fleet-wide tail,
    not an average of per-partition tails. The makespan is the slowest
    partition's; mode switches and switch overhead sum; occupancy is the
    fleet utilization (busy time across all instances over
    ``instances x merged makespan``).
    """
    parts = list(parts)
    if not parts:
        raise ConfigError("merge_serving_reports needs at least one report")
    streams = [stream for part in parts for stream in part.streams]
    if stream_order is not None:
        by_name = {stream.name: stream for stream in streams}
        missing = [name for name in stream_order if name not in by_name]
        if missing or len(stream_order) != len(streams):
            raise ConfigError(
                f"merged parts carry streams {sorted(by_name)}, expected"
                f" {list(stream_order)}"
            )
        streams = [by_name[name] for name in stream_order]
    makespan = max(part.makespan_s for part in parts)
    if len(parts) == 1:
        occupancy = dict(parts[0].occupancy)
    else:
        busy: dict[str, float] = {}
        for part in parts:
            for kind, fraction in part.occupancy.items():
                busy[kind] = busy.get(kind, 0.0) + fraction * part.makespan_s
        occupancy = {
            kind: (total / (len(parts) * makespan) if makespan > 0 else 0.0)
            for kind, total in sorted(busy.items())
        }
    platforms = list(dict.fromkeys(part.platform for part in parts))
    return ServingReport(
        scenario=scenario,
        platform="+".join(platforms),
        policy=parts[0].policy,
        frames=parts[0].frames,
        makespan_s=makespan,
        streams=tuple(streams),
        occupancy=occupancy,
        mode_switches=sum(part.mode_switches for part in parts),
        switch_overhead_s=sum(part.switch_overhead_s for part in parts),
        qos=parts[0].qos,
        tag=parts[0].tag,
    )


def run_serving_split(
    scenario: ScenarioSpec,
    platform: str | None = None,
    *,
    partitions: int | None = None,
    servers=None,
    session: Session | None = None,
    tag: str | None = None,
    timeout_s: float = DEFAULT_TIMEOUT_S,
) -> ServingReport:
    """Serve one scenario split across several platform instances.

    With ``servers``, each partition becomes one serving request
    dispatched to its server (dead servers re-dispatch like sweep
    shards); otherwise the partitions run sequentially in-process, each
    on a fresh schedule of the same platform — the single-process
    equivalent the remote path is golden-tested against. ``partitions``
    defaults to the server count (or 2 locally).
    """
    if servers is not None:
        servers = normalize_servers(servers)
        if partitions is None:
            partitions = len(servers)
    elif partitions is None:
        partitions = 2
    platform_spec = platform or scenario.platform
    if platform_spec is None:
        raise ConfigError(
            f"scenario {scenario.name!r} names no platform; pass one"
        )
    subs = split_scenario(scenario, partitions)

    if servers is None:
        session = session if session is not None else Session()
        parts = [
            session.run_serving(sub, platform_spec, tag=tag) for sub in subs
        ]
    else:
        requests = [
            SimRequest(
                platform=platform_spec,
                scenario=replace(sub, platform=None),
                serving=True,
                tag=tag,
            )
            for sub in subs
        ]
        grid = grid_from_requests(
            requests, framework_overhead_s=scenario.framework_overhead_s
        )
        points = tuple(grid)
        assignments = [
            (servers[index % len(servers)], (point,))
            for index, point in enumerate(points)
        ]
        reports, deltas, _dead = _submit_shards(
            assignments, grid.framework_overhead_s, timeout_s
        )
        if session is not None:
            for delta in deltas:
                session.cache.merge(delta)
        parts = [reports[point.request_id] for point in points]
    return merge_serving_reports(
        parts,
        scenario=scenario.name,
        stream_order=[stream.name for stream in scenario.streams],
    )


__all__ = [
    "DEFAULT_TIMEOUT_S",
    "merge_serving_reports",
    "normalize_servers",
    "run_serving_split",
    "run_sweep_remote",
    "server_capacities",
    "split_scenario",
    "weighted_assignments",
]
