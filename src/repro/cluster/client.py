"""The cluster client: one typed connection to one server.

A :class:`ClusterClient` holds a persistent TCP connection (one JSON
line out, one back per call) and surfaces every protocol failure as the
matching typed exception from :mod:`repro.errors` — transport failures
(refused, reset, timeout, EOF) become
:class:`~repro.errors.ClusterConnectionError`, which is the signal the
dispatcher uses to re-dispatch a dead server's shard elsewhere.
"""

from __future__ import annotations

import socket

from repro.cluster import protocol
from repro.errors import ClusterConnectionError, ClusterProtocolError, ConfigError
from repro.gemm.cache import CacheEntries


def parse_address(address: str) -> tuple[str, int]:
    """Split ``"host:port"`` (bracketed IPv6 allowed) into its parts."""
    text = address.strip()
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ConfigError(
            f"cluster address {address!r} must be host:port (e.g."
            " 127.0.0.1:7070)"
        )
    try:
        return host.strip("[]"), int(port)
    except ValueError:
        raise ConfigError(
            f"cluster address {address!r} has a non-numeric port"
        ) from None


class ClusterClient:
    """Speaks the cluster protocol to one server address.

    Usable as a context manager; the connection is opened lazily on the
    first call and kept for the client's lifetime (the protocol is
    strictly request/response, so one socket serves any number of
    calls).
    """

    def __init__(self, address: str, timeout_s: float = 600.0) -> None:
        self.address = address
        self.host, self.port = parse_address(address)
        self.timeout_s = timeout_s
        self._sock: socket.socket | None = None
        self._rfile = None

    # -- transport ---------------------------------------------------------------------
    def _connect(self) -> None:
        if self._sock is not None:
            return
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
            self._rfile = self._sock.makefile("rb")
        except OSError as error:
            self._sock = None
            raise ClusterConnectionError(
                f"cannot connect to cluster server {self.address}: {error}"
            ) from None

    def _rpc(self, message: dict) -> dict:
        self._connect()
        try:
            self._sock.sendall(protocol.encode_message(message))
            line = self._rfile.readline(protocol.MAX_FRAME_BYTES + 2)
        except OSError as error:
            self.close()
            raise ClusterConnectionError(
                f"cluster server {self.address} died mid-call: {error}"
            ) from None
        if not line:
            self.close()
            raise ClusterConnectionError(
                f"cluster server {self.address} closed the connection"
            )
        response = protocol.decode_message(line)
        protocol.raise_for_error(response)
        return response

    def close(self) -> None:
        sock, self._sock = self._sock, None
        rfile, self._rfile = self._rfile, None
        for closable in (rfile, sock):
            if closable is not None:
                try:
                    closable.close()
                except OSError:
                    pass

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- verbs -------------------------------------------------------------------------
    def hello(self) -> dict:
        """Handshake; raises on version mismatch, returns server info."""
        response = self._rpc(protocol.hello_message())
        if response.get("type") != "welcome":
            raise ClusterProtocolError(
                f"expected a welcome frame, got {response.get('type')!r}"
            )
        return response

    def status(self) -> dict:
        response = self._rpc(protocol.status_message())
        if response.get("type") != "status":
            raise ClusterProtocolError(
                f"expected a status frame, got {response.get('type')!r}"
            )
        return response

    def metrics(self) -> dict:
        """The server's metrics snapshot (mergeable; see ``repro.obs``)."""
        response = self._rpc(protocol.metrics_message())
        if response.get("type") != "metrics":
            raise ClusterProtocolError(
                f"expected a metrics frame, got {response.get('type')!r}"
            )
        return response

    def submit_points(
        self, points, framework_overhead_s: float | None = None
    ) -> tuple[dict, CacheEntries]:
        """Execute a shard remotely; returns (reports by ID, cache delta)."""
        response = self._rpc(
            protocol.submit_message(points, framework_overhead_s)
        )
        return protocol.parse_result(response)

    def submit_fuzz(
        self,
        seed: int,
        indices,
        shrink: bool = True,
        inject: str | None = None,
        differential: bool = False,
    ) -> list:
        """Run a fuzz shard remotely; returns its CaseRecords."""
        response = self._rpc(
            protocol.fuzz_message(
                seed,
                indices,
                shrink=shrink,
                inject=inject,
                differential=differential,
            )
        )
        return protocol.parse_fuzz_result(response)

    def drain(self) -> dict:
        """Stop the server accepting new submissions."""
        return self._rpc(protocol.drain_message())

    def shutdown(self) -> dict:
        """Gracefully stop the server (waits for in-flight work)."""
        response = self._rpc(protocol.shutdown_message())
        self.close()
        return response


__all__ = ["ClusterClient", "parse_address"]
