"""The cluster wire protocol: versioned, fingerprint-checked JSON lines.

Every message is one JSON object on one ``\\n``-terminated line, carrying
its protocol version under ``"v"`` — a server rejects any frame whose
version differs from its own with a typed ``version_mismatch`` error
rather than mis-parsing it. The verbs:

* ``hello`` / ``welcome`` — handshake and server introspection;
* ``status`` — pool and cache counters of a running server;
* ``metrics`` — the server's mergeable metrics-registry snapshot;
* ``submit`` / ``result`` — a shard of sweep points out, typed reports
  plus a :class:`~repro.gemm.cache.CacheEntries` delta back;
* ``drain`` / ``shutdown`` — lifecycle, acknowledged with ``ok``;
* ``error`` — a typed failure (``code`` selects the exception class).

Shard points travel as their canonical ``SimRequest`` dicts *plus* the
client-computed content fingerprint; the server re-derives the
fingerprint from the decoded request and refuses the shard on any
mismatch (:class:`~repro.errors.FingerprintMismatchError`) — a client and
server whose canonicalization diverged must fail loudly, not return
results keyed under the wrong identity. Reports cross the wire in their
``to_dict()`` JSON form (the same encoding the sqlite result store uses,
so a remote report equals its local twin bit-for-bit); cache entries are
pickled and base64-wrapped, the same snapshot sweep workers already ship
across process boundaries.
"""

from __future__ import annotations

import base64
import json
import pickle

from repro.api.results import (
    GemmReport,
    ModelReport,
    SimRequest,
    report_from_dict,
)
from repro.errors import (
    ClusterError,
    ClusterProtocolError,
    ClusterUnavailableError,
    FingerprintMismatchError,
    ProtocolVersionError,
)
from repro.gemm.cache import CacheEntries
from repro.sweep.grid import SweepPoint, point_extras, request_fingerprint

#: Bump on any incompatible wire change; both sides refuse a mismatch.
PROTOCOL_VERSION = 1

#: A single frame (reports + cache blob) may not exceed this.
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: ``error`` codes and the exception each one raises client-side, ordered
#: most-specific first (:func:`error_code_for` scans in order, and e.g. a
#: version mismatch is also a protocol error).
ERROR_TYPES = {
    "version_mismatch": ProtocolVersionError,
    "fingerprint_mismatch": FingerprintMismatchError,
    "unavailable": ClusterUnavailableError,
    "protocol": ClusterProtocolError,
    "internal": ClusterError,
}


# -- framing ---------------------------------------------------------------------------
def encode_message(message: dict) -> bytes:
    """One message as its ``\\n``-terminated JSON line."""
    line = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(line) > MAX_FRAME_BYTES:
        raise ClusterProtocolError(
            f"message of {len(line)} bytes exceeds the"
            f" {MAX_FRAME_BYTES}-byte frame limit"
        )
    return line + b"\n"


def decode_message(line: bytes | str) -> dict:
    """Parse one received line into its message dict."""
    if isinstance(line, bytes):
        if len(line) > MAX_FRAME_BYTES:
            raise ClusterProtocolError(
                f"frame of {len(line)} bytes exceeds the"
                f" {MAX_FRAME_BYTES}-byte limit"
            )
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ClusterProtocolError(
                f"frame is not valid UTF-8: {error}"
            ) from None
    try:
        message = json.loads(line)
    except json.JSONDecodeError as error:
        raise ClusterProtocolError(f"frame is not valid JSON: {error}") from None
    if not isinstance(message, dict) or "type" not in message:
        raise ClusterProtocolError(
            f"frame must be an object with a 'type', got {message!r}"
        )
    return message


def check_version(message: dict) -> None:
    """Refuse a frame whose protocol version differs from ours."""
    version = message.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolVersionError(
            f"peer speaks protocol version {version!r}, this side speaks"
            f" {PROTOCOL_VERSION}"
        )


# -- cache entries ---------------------------------------------------------------------
def encode_cache_entries(entries: CacheEntries) -> str:
    """A cache snapshot as a base64 string (pickle, like worker shipping)."""
    return base64.b64encode(
        pickle.dumps(entries, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_cache_entries(text: str) -> CacheEntries:
    try:
        entries = pickle.loads(base64.b64decode(text.encode("ascii")))
    except Exception as error:
        raise ClusterProtocolError(
            f"undecodable cache-entries blob: {error}"
        ) from None
    if not isinstance(entries, CacheEntries):
        raise ClusterProtocolError(
            f"cache blob holds {type(entries).__name__}, expected CacheEntries"
        )
    return entries


# -- shard points ----------------------------------------------------------------------
def point_to_wire(point: SweepPoint) -> dict:
    return {
        "index": point.index,
        "request_id": point.request_id,
        "fingerprint": point.fingerprint,
        "request": point.request.to_dict(),
    }


def point_from_wire(data: dict) -> SweepPoint:
    if not isinstance(data, dict):
        raise ClusterProtocolError(
            f"shard point must be an object, got {data!r}"
        )
    for key in ("request_id", "fingerprint", "request"):
        if key not in data:
            raise ClusterProtocolError(f"shard point is missing {key!r}")
    try:
        request = SimRequest.from_dict(data["request"])
    except Exception as error:
        raise ClusterProtocolError(
            f"shard point {data.get('request_id')!r} carries an undecodable"
            f" request: {error}"
        ) from None
    return SweepPoint(
        index=int(data.get("index", 0)),
        request_id=str(data["request_id"]),
        fingerprint=str(data["fingerprint"]),
        request=request,
    )


def verify_points(
    points, framework_overhead_s: float | None = None
) -> None:
    """Re-derive every point's fingerprint; refuse the shard on mismatch.

    This is the config check of the protocol: the fingerprint is a
    SHA-256 over the request's canonical JSON (plus sweep extras), so a
    mismatch means the two sides would disagree about what the request
    *is* — results computed anyway would be stored under a wrong key.

    Catalog-backed requests additionally pin the device-catalog spec:
    the wire request carries the client's catalog fingerprint, and the
    server recomputes its own from the same platform spec. A difference
    means the two hosts would simulate *different hardware* under the
    same name, so the shard is refused even though the wire fingerprint
    (which hashes the client's catalog value) is internally consistent.
    """
    from repro.catalog.loader import catalog_fingerprint

    for point in points:
        expected = request_fingerprint(
            point.request,
            point_extras(framework_overhead_s, point.request.kind),
        )
        if expected != point.fingerprint:
            raise FingerprintMismatchError(
                f"point {point.request_id!r}: client fingerprint"
                f" {point.fingerprint[:12]}... does not match this server's"
                f" {expected[:12]}... — client and server configurations"
                " have diverged"
            )
        local_catalog = catalog_fingerprint(point.request.platform)
        if point.request.catalog != local_catalog:
            raise FingerprintMismatchError(
                f"point {point.request_id!r}: client catalog fingerprint"
                f" {point.request.catalog!r} does not match this server's"
                f" {local_catalog!r} for platform"
                f" {point.request.platform!r} — the device catalogs have"
                " diverged"
            )


# -- message builders ------------------------------------------------------------------
def hello_message() -> dict:
    return {"v": PROTOCOL_VERSION, "type": "hello"}


def status_message() -> dict:
    return {"v": PROTOCOL_VERSION, "type": "status"}


def metrics_message() -> dict:
    """Ask a server for its metrics snapshot (see ``repro.obs.metrics``).

    The reply's ``metrics`` object is a registry snapshot — counters,
    gauges, and histogram sketch multisets — that merges associatively
    with any other server's, so a client can fold a whole fleet into one
    view in any order.
    """
    return {"v": PROTOCOL_VERSION, "type": "metrics"}


def drain_message() -> dict:
    return {"v": PROTOCOL_VERSION, "type": "drain"}


def shutdown_message() -> dict:
    return {"v": PROTOCOL_VERSION, "type": "shutdown"}


def submit_message(
    points, framework_overhead_s: float | None = None
) -> dict:
    return {
        "v": PROTOCOL_VERSION,
        "type": "submit",
        "framework_overhead_s": framework_overhead_s,
        "points": [point_to_wire(point) for point in points],
    }


def result_message(
    reports: dict[str, "GemmReport | ModelReport"], cache: CacheEntries
) -> dict:
    return {
        "v": PROTOCOL_VERSION,
        "type": "result",
        "reports": [
            {"request_id": request_id, "report": report.to_dict()}
            for request_id, report in reports.items()
        ],
        "cache": encode_cache_entries(cache),
    }


def fuzz_message(
    seed: int,
    indices,
    shrink: bool = True,
    inject: str | None = None,
    differential: bool = False,
) -> dict:
    """A fuzz shard: regenerate-and-evaluate these campaign indices.

    Cases travel as ``(seed, index)`` coordinates, not scenarios — both
    sides derive the identical case from the shared generator, so the
    shard is a few bytes regardless of batch size. ``differential``
    asks the server to run every case through both timeline engines
    (servers default it off when absent, so the key is wire-compatible).
    """
    return {
        "v": PROTOCOL_VERSION,
        "type": "fuzz",
        "seed": int(seed),
        "indices": [int(index) for index in indices],
        "shrink": bool(shrink),
        "inject": inject,
        "differential": bool(differential),
    }


def fuzz_result_message(records) -> dict:
    """A fuzz shard's outcome: CaseRecords in their ``to_dict()`` form."""
    return {
        "v": PROTOCOL_VERSION,
        "type": "fuzz_result",
        "records": [record.to_dict() for record in records],
    }


def parse_fuzz_result(message: dict) -> list:
    """Decode a ``fuzz_result`` frame into its CaseRecords."""
    # Deferred: repro.fuzz sits above the cluster layer.
    from repro.fuzz.campaign import CaseRecord

    if message.get("type") != "fuzz_result":
        raise ClusterProtocolError(
            f"expected a fuzz_result frame, got {message.get('type')!r}"
        )
    records = []
    for item in message.get("records", ()):
        try:
            records.append(CaseRecord.from_dict(item))
        except Exception as error:
            raise ClusterProtocolError(
                f"fuzz case record is undecodable: {error}"
            ) from None
    return records


def error_message(code: str, message: str) -> dict:
    if code not in ERROR_TYPES:
        raise ClusterProtocolError(f"unknown error code {code!r}")
    return {
        "v": PROTOCOL_VERSION,
        "type": "error",
        "code": code,
        "message": message,
    }


def error_code_for(error: Exception) -> str:
    """The wire code a server reports ``error`` under."""
    for code, exc_type in ERROR_TYPES.items():
        if code != "internal" and isinstance(error, exc_type):
            return code
    return "internal"


def raise_for_error(message: dict) -> None:
    """Re-raise an ``error`` frame as its typed client-side exception."""
    if message.get("type") != "error":
        return
    code = message.get("code", "internal")
    text = message.get("message", "unspecified cluster error")
    raise ERROR_TYPES.get(code, ClusterError)(text)


def parse_result(message: dict) -> tuple[dict, CacheEntries]:
    """Decode a ``result`` frame into (reports by request ID, cache delta)."""
    if message.get("type") != "result":
        raise ClusterProtocolError(
            f"expected a result frame, got {message.get('type')!r}"
        )
    reports = {}
    for item in message.get("reports", ()):
        if not isinstance(item, dict) or "request_id" not in item:
            raise ClusterProtocolError(f"malformed result entry: {item!r}")
        try:
            reports[item["request_id"]] = report_from_dict(item["report"])
        except Exception as error:
            raise ClusterProtocolError(
                f"result for {item['request_id']!r} is undecodable: {error}"
            ) from None
    cache = decode_cache_entries(message.get("cache", ""))
    return reports, cache


__all__ = [
    "ERROR_TYPES",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "check_version",
    "decode_cache_entries",
    "decode_message",
    "drain_message",
    "encode_cache_entries",
    "encode_message",
    "error_code_for",
    "error_message",
    "fuzz_message",
    "fuzz_result_message",
    "hello_message",
    "metrics_message",
    "parse_fuzz_result",
    "parse_result",
    "point_from_wire",
    "point_to_wire",
    "raise_for_error",
    "result_message",
    "shutdown_message",
    "status_message",
    "submit_message",
    "verify_points",
]
