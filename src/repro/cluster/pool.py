"""The warm worker pool: one process pool + one cache, many submissions.

A :class:`WarmPool` is what makes the cluster server *long-lived* instead
of a per-submission script: the ``ProcessPoolExecutor`` is created once
and reused (no interpreter spawn per sweep), and one shared
:class:`~repro.gemm.cache.TimingCache` accumulates across submissions.
Each multi-worker submission ships the pool's current cache to the
workers as a warm start — they hit instead of recompute, and return only
the entries they added beyond the warm set — so a resubmission of
overlapping work costs lookups, not simulations.

Execution rides the same shard core as local sweeps
(:func:`repro.sweep.workers.run_shard_points`), which is what keeps a
remote sweep bit-identical to a local one: both paths run the identical
deterministic code on the identical requests.
"""

from __future__ import annotations

import threading
from concurrent.futures import ProcessPoolExecutor

from repro.api.results import GemmReport, ModelReport
from repro.api.session import Session
from repro.errors import ConfigError
from repro.gemm.cache import CacheEntries, TimingCache
from repro.obs.metrics import MetricsRegistry
from repro.sweep.workers import (
    _ShardPayload,
    _run_shard,
    execute_point,
    shard_points,
)


class WarmPool:
    """A reusable executor plus a shared timing cache across submissions.

    ``jobs == 1`` executes in the owning process through one persistent
    :class:`~repro.api.session.Session` over the shared cache (platforms
    and executors stay memoized across submissions too); ``jobs > 1``
    shards across the warm process pool. Submissions are serialized —
    the pool is the unit of capacity, and interleaving two submissions
    through one cache would make their hit counters unattributable.
    """

    def __init__(self, jobs: int = 1, cache: TimingCache | None = None) -> None:
        if jobs < 1:
            raise ConfigError(f"pool jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache if cache is not None else TimingCache()
        self.metrics = MetricsRegistry()
        self._session = Session(cache=self.cache, metrics=self.metrics)
        self._executor: ProcessPoolExecutor | None = None
        self._lock = threading.Lock()
        self.submissions = 0
        self.points_run = 0

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self._executor

    def run_points(
        self, points, framework_overhead_s: float | None = None
    ) -> tuple[dict[str, "GemmReport | ModelReport"], CacheEntries]:
        """Execute ``points`` in order; returns (reports by ID, cache delta).

        The delta holds the entries and counters this submission added on
        top of the pool's pre-submission cache — exactly what a remote
        client needs to merge so its session cache ends up as warm as a
        local run's.
        """
        points = tuple(points)
        with self._lock:
            before = self.cache.export_entries()
            reports: dict[str, GemmReport | ModelReport] = {}
            if self.jobs == 1 or len(points) <= 1:
                for point in points:
                    reports[point.request_id] = execute_point(
                        self._session, point, framework_overhead_s
                    )
            else:
                payloads = [
                    _ShardPayload(
                        points=tuple(shard),
                        framework_overhead_s=framework_overhead_s,
                        warm=before,
                    )
                    for shard in shard_points(points, self.jobs)
                ]
                for outcome in self._pool().map(_run_shard, payloads):
                    self.cache.merge(outcome.cache)
                    if outcome.metrics is not None:
                        self.metrics.merge(outcome.metrics)
                    for request_id, report in outcome.reports:
                        reports[request_id] = report
            after = self.cache.export_entries()
            self.submissions += 1
            self.points_run += len(points)
        return reports, after.minus(before)

    def status(self) -> dict:
        """Counters for the ``status`` verb (all plain primitives).

        ``frames`` summarizes serving outcomes across every submission
        this pool ran — offered/completed/dropped/missed/preempted —
        the load signals a future autoscaler keys on (ROADMAP item 5a).
        """
        entries = self.cache.export_entries()
        stats = entries.stats
        counter = self.metrics.counter_value
        return {
            "jobs": self.jobs,
            "submissions": self.submissions,
            "points": self.points_run,
            "cache": {
                "timings": len(entries.timings),
                "windows": len(entries.windows),
                "hits": stats.hits,
                "misses": stats.misses,
                "window_hits": stats.window_hits,
                "window_misses": stats.window_misses,
            },
            "frames": {
                "offered": counter("frames_offered_total"),
                "completed": counter("frames_completed_total"),
                "dropped": counter("frames_dropped_total"),
                "missed": counter("frames_missed_total"),
                "preempted": counter("frames_preempted_total"),
            },
        }

    def metrics_snapshot(self) -> dict:
        """The pool's mergeable metrics snapshot (the ``metrics`` verb)."""
        return self.metrics.snapshot()

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WarmPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["WarmPool"]
