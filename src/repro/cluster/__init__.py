"""``repro.cluster`` — a long-lived simulation service over the network.

The paper resolves the efficiency-vs-flexibility tension *on chip* by
time-sharing one substrate across execution modes; at fleet scale the
same tension recurs between cold per-run scripts (flexible, slow) and a
dedicated warm service (efficient, shared). This package is the service:

* :mod:`~repro.cluster.protocol` — versioned, fingerprint-checked
  JSON-line wire protocol (TCP or stdio);
* :mod:`~repro.cluster.pool` — one warm ``ProcessPoolExecutor`` plus one
  shared :class:`~repro.gemm.cache.TimingCache` across submissions;
* :mod:`~repro.cluster.server` / :mod:`~repro.cluster.client` — the
  ``repro cluster serve`` daemon (status/drain/graceful shutdown) and
  its typed client;
* :mod:`~repro.cluster.dispatch` — shard a sweep across servers (with
  dead-shard re-dispatch and cache merge on join) and split one arrival
  trace across platform instances, merging the serving reports.

Remote runs are bit-identical to local ones: shards carry stable
content-addressed request IDs, results come back in the same canonical
JSON the sqlite store uses, and mismatched protocol versions or config
fingerprints are refused with typed errors instead of silently wrong
results.
"""

from repro.cluster.client import ClusterClient, parse_address
from repro.cluster.dispatch import (
    merge_serving_reports,
    normalize_servers,
    run_serving_split,
    run_sweep_remote,
    split_scenario,
)
from repro.cluster.pool import WarmPool
from repro.cluster.protocol import PROTOCOL_VERSION
from repro.cluster.server import ClusterServer, serve_stdio

__all__ = [
    "PROTOCOL_VERSION",
    "ClusterClient",
    "ClusterServer",
    "WarmPool",
    "merge_serving_reports",
    "normalize_servers",
    "parse_address",
    "run_serving_split",
    "run_sweep_remote",
    "serve_stdio",
    "split_scenario",
]
