"""The one seed-derivation scheme every seeded generator goes through.

Determinism is a repo-wide contract: a seeded run must be bit-identical
in every process, on every platform, forever. Python's ``hash()`` is
process-randomized and ``random.Random(tuple)`` hashes through it, so
neither is usable for cross-process seeds. Instead, every derived seed
in the repo is computed the same way:

    ``derive_seed(seed, *salts)`` =
        first 8 bytes (big-endian) of
        ``sha256(":".join(str(part) for part in (seed, *salts)))``

Properties this buys:

* **stable** — pure function of its inputs; no process state, no import
  order, no interpreter version dependence (SHA-256 is fixed forever);
* **collision-resistant in practice** — distinct salt paths get
  independent 64-bit streams, so a campaign seed can fan out into
  per-case seeds, which fan out into per-stream arrival seeds, without
  correlated draws;
* **self-describing** — salts are plain strings/ints joined with ``:``,
  so ``derive_seed(7, "case", 12)`` hashes ``"7:case:12"`` and the
  derivation of any RNG stream can be read off its call site.

Known derivation paths (keep this list current — it is the audit trail
the fuzzer's replay guarantee rests on):

* arrival generation salts by **stream name**:
  ``derive_seed(spec.seed, stream_name)`` seeds one stream's arrival
  process (:func:`repro.serving.traces.generate_arrivals` via
  :func:`repro.serving.traces.stream_seed`, which is this function under
  its historical name);
* fuzz campaigns salt by **case index**:
  ``derive_seed(campaign_seed, "case", index)`` seeds one generated
  case (:mod:`repro.fuzz.generators`), and each case's streams re-salt
  by name through the arrival path above.

Nothing in ``src/`` may fall back to global RNG state (``random.random``
et al. at module scope); generators take an explicit seed and derive
from it here.
"""

from __future__ import annotations

import hashlib

__all__ = ["derive_seed"]


def derive_seed(seed: int, *salts: "str | int") -> int:
    """A stable 64-bit seed derived from ``seed`` and a salt path.

    See the module docstring for the scheme and the registry of salt
    paths in use. With a single string salt this is bit-compatible with
    the historical ``stream_seed(seed, salt)`` helper.
    """
    material = ":".join(str(part) for part in (seed, *salts))
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")
