"""Generic named counters shared by the timing and energy models."""

from __future__ import annotations

import math

from collections import defaultdict
from typing import Iterable, Iterator, Mapping


class CounterBag:
    """A mapping of counter name -> float with arithmetic helpers.

    Used for event counts (memory accesses, issued instructions, stall
    cycles). Supports merging bags from sub-simulations and scaling a
    steady-state sample up to a full kernel.
    """

    def __init__(self, initial: Mapping[str, float] | None = None) -> None:
        self._counts: dict[str, float] = defaultdict(float)
        if initial:
            for name, value in initial.items():
                self._counts[name] = float(value)

    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount``."""
        self._counts[name] += amount

    def get(self, name: str) -> float:
        """Current value of ``name`` (0.0 when never incremented)."""
        return self._counts.get(name, 0.0)

    def merge(self, other: "CounterBag") -> None:
        """Add every counter of ``other`` into this bag in place."""
        for name, value in other.items():
            self._counts[name] += value

    def merged(self, other: "CounterBag") -> "CounterBag":
        """Return a new bag holding the element-wise sum."""
        result = CounterBag(self._counts)
        result.merge(other)
        return result

    def scaled(self, factor: float) -> "CounterBag":
        """Return a new bag with every counter multiplied by ``factor``."""
        return CounterBag({name: value * factor for name, value in self.items()})

    def items(self) -> Iterable[tuple[str, float]]:
        return self._counts.items()

    def names(self) -> Iterable[str]:
        return self._counts.keys()

    def as_dict(self) -> dict[str, float]:
        """A plain-dict copy of the counters."""
        return dict(self._counts)

    def total(self) -> float:
        """Sum over all counters."""
        return sum(self._counts.values())

    def __getitem__(self, name: str) -> float:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def __iter__(self) -> Iterator[str]:
        return iter(self._counts)

    def __len__(self) -> int:
        return len(self._counts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CounterBag):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._counts.items()))
        return f"CounterBag({inner})"


def percentile(values: Iterable[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (0.0 for an empty input).

    Nearest rank (no interpolation) keeps tail-latency numbers
    deterministic and exactly equal to an observed sample, which is what
    lets serving reports round-trip bit-for-bit through JSON.
    """
    if not 0.0 < q <= 100.0:
        raise ValueError(f"percentile must be in (0, 100], got {q}")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[rank - 1]
