"""Generic named counters and streaming statistics shared across models.

Besides the :class:`CounterBag` event counters, this module holds the
bounded-memory latency statistics the streaming serving path runs on:
:class:`P2Quantile` (the Jain/Chlamtac P² algorithm — one quantile
estimate from five markers, O(1) memory and update) and
:class:`QuantileSketch`, the p50/p95/p99 + count/sum/max bundle a
million-frame trace accumulates per stream instead of a per-frame record
list.
"""

from __future__ import annotations

import math

from collections import defaultdict
from typing import Iterable, Iterator, Mapping


class CounterBag:
    """A mapping of counter name -> float with arithmetic helpers.

    Used for event counts (memory accesses, issued instructions, stall
    cycles). Supports merging bags from sub-simulations and scaling a
    steady-state sample up to a full kernel.
    """

    def __init__(self, initial: Mapping[str, float] | None = None) -> None:
        self._counts: dict[str, float] = defaultdict(float)
        if initial:
            for name, value in initial.items():
                self._counts[name] = float(value)

    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount``."""
        self._counts[name] += amount

    def get(self, name: str) -> float:
        """Current value of ``name`` (0.0 when never incremented)."""
        return self._counts.get(name, 0.0)

    def merge(self, other: "CounterBag") -> None:
        """Add every counter of ``other`` into this bag in place."""
        for name, value in other.items():
            self._counts[name] += value

    def merged(self, other: "CounterBag") -> "CounterBag":
        """Return a new bag holding the element-wise sum."""
        result = CounterBag(self._counts)
        result.merge(other)
        return result

    def scaled(self, factor: float) -> "CounterBag":
        """Return a new bag with every counter multiplied by ``factor``."""
        return CounterBag({name: value * factor for name, value in self.items()})

    def items(self) -> Iterable[tuple[str, float]]:
        return self._counts.items()

    def names(self) -> Iterable[str]:
        return self._counts.keys()

    def as_dict(self) -> dict[str, float]:
        """A plain-dict copy of the counters."""
        return dict(self._counts)

    def total(self) -> float:
        """Sum over all counters."""
        return sum(self._counts.values())

    def __getitem__(self, name: str) -> float:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def __iter__(self) -> Iterator[str]:
        return iter(self._counts)

    def __len__(self) -> int:
        return len(self._counts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CounterBag):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._counts.items()))
        return f"CounterBag({inner})"


def percentile(values: Iterable[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (0.0 for an empty input).

    Nearest rank (no interpolation) keeps tail-latency numbers
    deterministic and exactly equal to an observed sample, which is what
    lets serving reports round-trip bit-for-bit through JSON.
    """
    if not 0.0 < q <= 100.0:
        raise ValueError(f"percentile must be in (0, 100], got {q}")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[rank - 1]


class P2Quantile:
    """One streaming quantile estimate — the P² algorithm.

    Jain & Chlamtac's P² maintains five markers (min, three interior
    quantile estimates, max) and nudges them toward their desired rank
    positions with a piecewise-parabolic fit on every observation: O(1)
    memory and O(1) update, no sample retention. Until five observations
    arrive the estimate is the *exact* nearest-rank percentile of the
    buffer (matching :func:`percentile`), so tiny streams lose nothing.

    Accuracy is distribution-dependent but typically well under 1%
    relative error on unimodal data; the serving report records the
    estimates as such (``sketches``) and never claims exactness.
    """

    __slots__ = ("p", "count", "_heights", "_positions", "_desired", "_dn")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p}")
        self.p = p
        self.count = 0
        self._heights: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [
            1.0,
            1.0 + 2.0 * p,
            1.0 + 4.0 * p,
            3.0 + 2.0 * p,
            5.0,
        ]
        self._dn = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]

    def update(self, value: float) -> None:
        value = float(value)
        self.count += 1
        heights = self._heights
        if self.count <= 5:
            heights.append(value)
            if self.count == 5:
                heights.sort()
            return
        positions = self._positions
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while not (heights[cell] <= value < heights[cell + 1]):
                cell += 1
        for index in range(cell + 1, 5):
            positions[index] += 1.0
        desired = self._desired
        for index in range(5):
            desired[index] += self._dn[index]
        for index in (1, 2, 3):
            drift = desired[index] - positions[index]
            if (
                drift >= 1.0 and positions[index + 1] - positions[index] > 1.0
            ) or (
                drift <= -1.0 and positions[index - 1] - positions[index] < -1.0
            ):
                step = 1.0 if drift > 0.0 else -1.0
                candidate = self._parabolic(index, step)
                if heights[index - 1] < candidate < heights[index + 1]:
                    heights[index] = candidate
                else:
                    heights[index] = self._linear(index, step)
                positions[index] += step

    def _parabolic(self, i: int, d: float) -> float:
        q = self._heights
        n = self._positions
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d)
            * (q[i + 1] - q[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d)
            * (q[i] - q[i - 1])
            / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        q = self._heights
        n = self._positions
        j = i + int(d)
        return q[i] + d * (q[j] - q[i]) / (n[j] - n[i])

    def result(self) -> float:
        """The current estimate (exact nearest-rank while count <= 5)."""
        if self.count == 0:
            return 0.0
        if self.count <= 5:
            return percentile(self._heights, self.p * 100.0)
        return self._heights[2]

    def to_dict(self) -> dict:
        """Full marker state — round-trips the estimator exactly."""
        return {
            "p": self.p,
            "count": self.count,
            "heights": list(self._heights),
            "positions": list(self._positions),
            "desired": list(self._desired),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "P2Quantile":
        sketch = cls(payload["p"])
        sketch.count = int(payload["count"])
        sketch._heights = [float(v) for v in payload["heights"]]
        sketch._positions = [float(v) for v in payload["positions"]]
        sketch._desired = [float(v) for v in payload["desired"]]
        return sketch


#: The latency quantiles every serving report carries.
SKETCH_QUANTILES = (0.5, 0.95, 0.99)


class QuantileSketch:
    """Bounded-memory latency statistics for one stream of observations.

    Bundles count/sum/max with one :class:`P2Quantile` per entry of
    ``SKETCH_QUANTILES`` — everything a :class:`ServingStreamReport`
    needs, in O(1) memory, so million-frame streaming runs never hold a
    per-frame list. JSON round-trip (:meth:`to_dict`/:meth:`from_dict`)
    preserves every marker bit so replayed reports agree exactly.
    """

    __slots__ = ("count", "total", "max_value", "quantiles")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0
        self.quantiles = {p: P2Quantile(p) for p in SKETCH_QUANTILES}

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value
        for sketch in self.quantiles.values():
            sketch.update(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate for percentile ``q`` (one of 50/95/99)."""
        sketch = self.quantiles.get(q / 100.0)
        if sketch is None:
            raise ValueError(
                f"sketch tracks {[p * 100 for p in SKETCH_QUANTILES]},"
                f" not p{q:g}"
            )
        return sketch.result()

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "max": self.max_value,
            "quantiles": {
                f"{p * 100:g}": sketch.to_dict()
                for p, sketch in self.quantiles.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QuantileSketch":
        sketch = cls()
        sketch.count = int(payload["count"])
        sketch.total = float(payload["total"])
        sketch.max_value = float(payload["max"])
        sketch.quantiles = {
            float(key) / 100.0: P2Quantile.from_dict(value)
            for key, value in payload["quantiles"].items()
        }
        return sketch
