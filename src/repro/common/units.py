"""Unit conversions between cycles, wall-clock time, FLOPs and bytes.

The simulators count cycles; experiments report milliseconds and TFLOPS.
Keeping every conversion here avoids scattered magic constants.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

KILO = 1_000
MEGA = 1_000_000
GIGA = 1_000_000_000
TERA = 1_000_000_000_000


def cycles_to_seconds(cycles: float, clock_ghz: float) -> float:
    """Convert a cycle count to seconds for a clock in GHz."""
    if clock_ghz <= 0:
        raise ValueError(f"clock_ghz must be positive, got {clock_ghz}")
    return cycles / (clock_ghz * GIGA)


def cycles_to_ms(cycles: float, clock_ghz: float) -> float:
    """Convert a cycle count to milliseconds."""
    return cycles_to_seconds(cycles, clock_ghz) * 1e3


def cycles_to_us(cycles: float, clock_ghz: float) -> float:
    """Convert a cycle count to microseconds."""
    return cycles_to_seconds(cycles, clock_ghz) * 1e6


def seconds_to_cycles(seconds: float, clock_ghz: float) -> float:
    """Convert seconds to (fractional) cycles for a clock in GHz."""
    if clock_ghz <= 0:
        raise ValueError(f"clock_ghz must be positive, got {clock_ghz}")
    return seconds * clock_ghz * GIGA


def ms_to_cycles(ms: float, clock_ghz: float) -> float:
    """Convert milliseconds to (fractional) cycles."""
    return seconds_to_cycles(ms * 1e-3, clock_ghz)


def flops_to_tflops(flops_per_second: float) -> float:
    """Convert FLOP/s to TFLOP/s."""
    return flops_per_second / TERA


def human_bytes(num_bytes: float) -> str:
    """Render a byte count with a binary suffix, e.g. ``96.0 KiB``."""
    value = float(num_bytes)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or suffix == "TiB":
            return f"{value:.1f} {suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")


def human_flops(flops: float) -> str:
    """Render a FLOP count with a decimal suffix, e.g. ``1.42 GFLOP``."""
    value = float(flops)
    for suffix in ("FLOP", "KFLOP", "MFLOP", "GFLOP", "TFLOP"):
        if abs(value) < 1000.0 or suffix == "TFLOP":
            return f"{value:.2f} {suffix}"
        value /= 1000.0
    raise AssertionError("unreachable")
