"""Small integer/tiling helpers used across the simulators."""

from __future__ import annotations

from typing import Iterator, Sequence


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division; denominator must be positive."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return -(-numerator // denominator)


def round_up(value: int, multiple: int) -> int:
    """Round ``value`` up to the next multiple of ``multiple``."""
    return ceil_div(value, multiple) * multiple


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the inclusive range [low, high]."""
    if low > high:
        raise ValueError(f"empty clamp range [{low}, {high}]")
    return max(low, min(high, value))


def prod(values: Sequence[int]) -> int:
    """Product of a sequence of integers (1 for the empty sequence)."""
    result = 1
    for value in values:
        result *= value
    return result


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_int(value: int) -> int:
    """Exact integer log2; raises for non powers of two."""
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


def tile_spans(extent: int, tile: int) -> Iterator[tuple[int, int]]:
    """Yield ``(start, size)`` spans covering ``[0, extent)`` in ``tile`` steps.

    The final span may be smaller than ``tile``. ``extent == 0`` yields
    nothing.
    """
    if tile <= 0:
        raise ValueError(f"tile must be positive, got {tile}")
    if extent < 0:
        raise ValueError(f"extent must be non-negative, got {extent}")
    start = 0
    while start < extent:
        size = min(tile, extent - start)
        yield start, size
        start += size


def split_range(extent: int, parts: int) -> list[tuple[int, int]]:
    """Split ``[0, extent)`` into ``parts`` contiguous near-equal spans.

    Earlier spans receive the remainder, matching how work is typically
    balanced across SMs. Returns a list of ``(start, size)`` with zero-size
    spans allowed when ``parts > extent``.
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    base, extra = divmod(extent, parts)
    spans = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        spans.append((start, size))
        start += size
    return spans
