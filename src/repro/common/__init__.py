"""Shared infrastructure: units, tiling math, counters, table rendering."""

from repro.common.mathutil import (
    ceil_div,
    clamp,
    is_power_of_two,
    log2_int,
    prod,
    round_up,
    split_range,
    tile_spans,
)
from repro.common.seeding import derive_seed
from repro.common.stats import CounterBag
from repro.common.tables import format_quantity, render_table
from repro.common.units import (
    GIGA,
    KIB,
    MEGA,
    MIB,
    cycles_to_ms,
    cycles_to_seconds,
    cycles_to_us,
    flops_to_tflops,
    human_bytes,
    human_flops,
    ms_to_cycles,
    seconds_to_cycles,
)

__all__ = [
    "GIGA",
    "KIB",
    "MEGA",
    "MIB",
    "CounterBag",
    "ceil_div",
    "clamp",
    "cycles_to_ms",
    "cycles_to_seconds",
    "cycles_to_us",
    "derive_seed",
    "flops_to_tflops",
    "format_quantity",
    "human_bytes",
    "human_flops",
    "is_power_of_two",
    "log2_int",
    "ms_to_cycles",
    "prod",
    "render_table",
    "round_up",
    "seconds_to_cycles",
    "split_range",
    "tile_spans",
]
