"""Plain-text table rendering for benchmark and experiment reports.

The benchmark harness prints the same rows/series as the paper's tables and
figures; this module keeps that output aligned and reproducible.
"""

from __future__ import annotations

from typing import Sequence


def format_quantity(value: object, precision: int = 3) -> str:
    """Format one cell: floats get fixed precision, the rest use str()."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.001 and value != 0.0):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render an ASCII table with aligned columns.

    ``rows`` may hold any mix of strings and numbers; every row must have the
    same arity as ``headers``.
    """
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
    cells = [[format_quantity(value, precision) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(values: Sequence[str]) -> str:
        return " | ".join(value.rjust(widths[i]) for i, value in enumerate(values))

    separator = "-+-".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(list(headers)))
    lines.append(separator)
    lines.extend(format_row(row) for row in cells)
    return "\n".join(lines)
