"""Structured timeline tracing with a zero-overhead-when-off contract.

A :class:`Tracer` is an opt-in event log both timeline engines append to
at their dispatch/completion/QoS decision points. Two invariants make it
safe to attach anywhere:

* **Transparency** — the tracer only *observes*: it never touches a
  simulation float, so a run with a tracer attached produces reports
  byte-identical to one without (pinned by golden tests and the
  ``trace_transparency`` fuzz oracle).
* **Engine parity** — the scalar and vectorized engines emit the *same*
  event sequence for the same input, exactly as their timelines are
  bit-identical. The parity gate in ``tests/obs`` compares the raw
  sequences element-for-element.

The hot paths record plain tuples (one list append per event); the
structured :class:`TraceEvent` view is materialized lazily via
:attr:`Tracer.events`, so tracing-on overhead stays within the CI gate
(``benchmarks/bench_obs_overhead.py``) and tracing-off overhead is one
``is not None`` test per site.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigError

#: Every event kind a tracer can record, in no particular order.
#: ``begin``/``end`` bound kernel-execution spans; ``switch`` marks a
#: cross-stream mode-switch surcharge; the rest are instants mirroring
#: the engines' QoS/preemption records.
EVENT_KINDS = ("begin", "end", "switch", "drop", "abort", "deschedule")


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace event (the lazy view over a tuple record).

    ``release_s`` (begin only) is the instant the frame became runnable —
    the queueing span is ``[release_s, time_s]``. ``resources`` (begin
    only) are the claimed resource kinds, in claim order, for per-resource
    utilization tracks. ``reason`` rides the QoS/preemption instants and
    ``cost_s`` the switch surcharge.
    """

    kind: str
    time_s: float
    uid: int
    name: str
    stream: str
    frame: int
    mode: str = "simd"
    release_s: float | None = None
    resources: tuple[str, ...] = ()
    reason: str | None = None
    cost_s: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ConfigError(
                f"trace event kind must be one of {EVENT_KINDS}, got"
                f" {self.kind!r}"
            )
        object.__setattr__(self, "resources", tuple(self.resources))

    def to_dict(self) -> dict:
        payload: dict = {
            "kind": self.kind,
            "time_s": self.time_s,
            "uid": self.uid,
            "name": self.name,
            "stream": self.stream,
            "frame": self.frame,
        }
        if self.mode != "simd":
            payload["mode"] = self.mode
        if self.release_s is not None:
            payload["release_s"] = self.release_s
        if self.resources:
            payload["resources"] = list(self.resources)
        if self.reason is not None:
            payload["reason"] = self.reason
        if self.cost_s is not None:
            payload["cost_s"] = self.cost_s
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "TraceEvent":
        if not isinstance(data, dict):
            raise ConfigError(f"trace event must be an object, got {data!r}")
        return cls(
            kind=data.get("kind", "begin"),
            time_s=data.get("time_s", 0.0),
            uid=data.get("uid", 0),
            name=data.get("name", "op"),
            stream=data.get("stream", ""),
            frame=data.get("frame", 0),
            mode=data.get("mode", "simd"),
            release_s=data.get("release_s"),
            resources=tuple(data.get("resources", ())),
            reason=data.get("reason"),
            cost_s=data.get("cost_s"),
        )


class Tracer:
    """An append-only event log the timeline engines feed.

    Attach one via ``TimelineScheduler(..., tracer=Tracer())`` (or the
    ``Session.run_*`` / ``serve_streaming`` pass-throughs), run, then
    read :attr:`events` or hand the tracer to
    :func:`repro.obs.perfetto.export_chrome_trace`.
    """

    __slots__ = ("records",)

    def __init__(self) -> None:
        #: Raw event tuples, in emission order:
        #: ``(kind, time_s, uid, name, stream, frame, mode, release_s,
        #: resources, reason, cost_s)``. The engines compare these
        #: directly in the parity gate; everything else should prefer
        #: :attr:`events`.
        self.records: list[tuple] = []

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return f"Tracer(events={len(self.records)})"

    # -- engine-facing recording (hot paths: one append each) --------------------------
    def begin(self, now: float, task) -> None:
        """Kernel dispatch: ``task`` starts executing at ``now``."""
        self.records.append(
            (
                "begin", now, task.uid, task.name, task.stream, task.frame,
                task.mode, task.release_s,
                tuple(claim.kind.value for claim in task.claims), None, None,
            )
        )

    def end(self, now: float, task) -> None:
        """Kernel completion at ``now``."""
        self.records.append(
            (
                "end", now, task.uid, task.name, task.stream, task.frame,
                task.mode, None, (), None, None,
            )
        )

    def switch(self, now: float, task, cost_s: float) -> None:
        """Cross-stream mode switch charged to ``task`` at dispatch."""
        self.records.append(
            (
                "switch", now, task.uid, task.name, task.stream, task.frame,
                task.mode, None, (), None, cost_s,
            )
        )

    def instant(self, kind: str, record) -> None:
        """A QoS/preemption instant mirroring an engine record.

        ``record`` is a :class:`~repro.schedule.timeline.DropRecord` or
        :class:`~repro.schedule.timeline.PreemptRecord` — both carry
        ``uid``/``name``/``stream``/``frame``/``time_s``/``reason``.
        """
        self.records.append(
            (
                kind, record.time_s, record.uid, record.name, record.stream,
                record.frame, "simd", None, (), record.reason, None,
            )
        )

    # -- structured views --------------------------------------------------------------
    @property
    def events(self) -> tuple[TraceEvent, ...]:
        """The structured view, materialized on demand."""
        return tuple(
            TraceEvent(
                kind=kind, time_s=time_s, uid=uid, name=name, stream=stream,
                frame=frame, mode=mode, release_s=release_s,
                resources=resources, reason=reason, cost_s=cost_s,
            )
            for (kind, time_s, uid, name, stream, frame, mode, release_s,
                 resources, reason, cost_s) in self.records
        )

    def to_dict(self) -> dict:
        return {
            "kind": "trace",
            "events": [event.to_dict() for event in self.events],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "Tracer":
        if not isinstance(data, dict):
            raise ConfigError(f"trace must be an object, got {data!r}")
        kind = data.get("kind", "trace")
        if kind != "trace":
            raise ConfigError(
                f"Tracer.from_dict got kind={kind!r}, expected 'trace'"
            )
        tracer = cls()
        for entry in data.get("events", ()):
            event = TraceEvent.from_dict(entry)
            tracer.records.append(
                (
                    event.kind, event.time_s, event.uid, event.name,
                    event.stream, event.frame, event.mode, event.release_s,
                    event.resources, event.reason, event.cost_s,
                )
            )
        return tracer

    @classmethod
    def from_json(cls, text: str) -> "Tracer":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigError(f"invalid trace JSON: {error}") from None
        return cls.from_dict(data)

    def save(self, path: "str | Path") -> None:
        Path(path).write_text(self.to_json(indent=2), encoding="utf-8")

    @classmethod
    def load(cls, path: "str | Path") -> "Tracer":
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as error:
            raise ConfigError(
                f"cannot read trace {str(path)!r}: {error}"
            ) from None
        return cls.from_json(text)


__all__ = ["EVENT_KINDS", "TraceEvent", "Tracer"]
