"""``repro.obs`` — deterministic tracing, fleet metrics, Perfetto export.

The observability layer for the simulator, in three pieces:

* :mod:`~repro.obs.trace` — a zero-overhead-when-off structured tracer
  both timeline engines feed identically (spans for kernel execution and
  queueing, instants for switches, drops, aborts, and preemption
  deschedules). Attaching a tracer never changes a report byte — the
  transparency contract is pinned by tests and a fuzz oracle.
* :mod:`~repro.obs.perfetto` — a Chrome-trace-event exporter rendering
  per-stream tracks, per-resource utilization counters, and QoS
  instants, openable directly in ``ui.perfetto.dev``.
* :mod:`~repro.obs.metrics` / :mod:`~repro.obs.selfprof` — a metrics
  registry (integer counters, peak gauges, P²-sketch histograms) whose
  snapshots merge associatively across sweep workers and cluster
  servers, Prometheus text exposition, and per-phase wall-time
  self-profiling. The cluster ``metrics`` verb serves these snapshots.

Everything here is observation-only: no module in this package is
imported by an engine hot path unless a tracer/registry is attached.
"""

from repro.obs.metrics import (
    SNAPSHOT_SECTIONS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    histogram_stats,
    merge_snapshots,
    record_report_metrics,
    record_serving_metrics,
    render_prometheus,
    sample_key,
    validate_snapshot,
)
from repro.obs.perfetto import (
    QUEUE_PID,
    RESOURCE_PID,
    STREAM_PID,
    export_chrome_trace,
    save_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.selfprof import PHASE_METRIC, profile_phase
from repro.obs.trace import EVENT_KINDS, TraceEvent, Tracer

__all__ = [
    "EVENT_KINDS",
    "PHASE_METRIC",
    "QUEUE_PID",
    "RESOURCE_PID",
    "SNAPSHOT_SECTIONS",
    "STREAM_PID",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceEvent",
    "Tracer",
    "export_chrome_trace",
    "histogram_stats",
    "merge_snapshots",
    "profile_phase",
    "record_report_metrics",
    "record_serving_metrics",
    "render_prometheus",
    "sample_key",
    "save_chrome_trace",
    "validate_chrome_trace",
    "validate_snapshot",
]
