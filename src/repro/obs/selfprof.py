"""Per-phase self-profiling: attribute simulator wall-time to phases.

:func:`profile_phase` wraps one phase of work (lowering, frame
instantiation, scheduling, an RPC verb) and records its wall-clock
duration into a registry **histogram** (``phase_seconds{phase=...}``).
Durations go into P² sketches rather than float-sum counters because
sketch-multiset merging is exact (see :mod:`repro.obs.metrics`) while
float summation is not associative.

Profiling is opt-in exactly like tracing: every call site passes the
session's registry, and ``profile_phase(None, ...)`` is a shared no-op
context manager, so a registry-less run pays one ``is None`` test.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from time import perf_counter

#: Histogram family every phase duration lands in.
PHASE_METRIC = "phase_seconds"

_NULL = nullcontext()


@contextmanager
def _timed(registry, name: str):
    start = perf_counter()
    try:
        yield
    finally:
        registry.histogram(PHASE_METRIC, phase=name).observe(
            perf_counter() - start
        )


def profile_phase(registry, name: str):
    """Context manager timing one phase into ``registry`` (no-op on None)."""
    if registry is None:
        return _NULL
    return _timed(registry, name)


__all__ = ["PHASE_METRIC", "profile_phase"]
