"""Fleet metrics: counters, gauges, P²-sketch histograms, exact merging.

A :class:`MetricsRegistry` is a process-local bag of named samples.
Snapshots (:meth:`MetricsRegistry.snapshot`) are plain JSON-able dicts
that merge **associatively and commutatively** across sweep workers and
cluster servers — the property the fleet relies on, pinned by a
hypothesis test:

* counters are integer sums (float addition would break associativity
  in the last ulp, so counters refuse non-integers);
* gauges merge by ``max`` (peak semantics: "highest in-flight anywhere");
* histograms are **multisets of P² sketch states** — each process
  contributes its own sketch, merging is multiset union under a
  canonical sort, and quantile queries over a merged snapshot are
  count-weighted averages of the member sketches. P² states cannot be
  folded into one another losslessly, so the multiset *is* the merged
  state.

Labels ride inside the sample key using Prometheus exposition syntax
(``name{k="v"}``), which makes :func:`render_prometheus` a direct
transcription and keeps merged snapshots string-keyed.
"""

from __future__ import annotations

import json

from repro.common.stats import P2Quantile, QuantileSketch
from repro.errors import ConfigError

#: Top-level snapshot sections, in exposition order.
SNAPSHOT_SECTIONS = ("counters", "gauges", "histograms")


def sample_key(name: str, labels: dict | None = None) -> str:
    """``name`` or ``name{k="v",...}`` with labels canonically sorted."""
    if not name or "{" in name or '"' in name:
        raise ConfigError(f"bad metric name {name!r}")
    if not labels:
        return name
    inner = ",".join(
        f'{key}="{value}"' for key, value in sorted(labels.items())
    )
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing integer count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount != int(amount) or amount < 0:
            raise ConfigError(
                f"counters take non-negative integers, got {amount!r}"
            )
        self.value += int(amount)


class Gauge:
    """A point-in-time value; merged snapshots keep the peak."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def high_water(self, value: float) -> None:
        if value > self.value:
            self.value = float(value)


class Histogram:
    """A streaming distribution backed by one P² quantile sketch."""

    __slots__ = ("sketch",)

    def __init__(self) -> None:
        self.sketch = QuantileSketch()

    def observe(self, value: float) -> None:
        self.sketch.add(value)


class MetricsRegistry:
    """Process-local metrics plus any snapshots merged in from afar."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        #: Foreign sketch states absorbed via :meth:`merge` — P² states
        #: don't fold, so they stay as multiset members (see module doc).
        self._foreign_sketches: dict[str, list[dict]] = {}

    # -- sample accessors (get-or-create) ----------------------------------------------
    def counter(self, name: str, **labels) -> Counter:
        key = sample_key(name, labels)
        sample = self._counters.get(key)
        if sample is None:
            sample = self._counters[key] = Counter()
        return sample

    def gauge(self, name: str, **labels) -> Gauge:
        key = sample_key(name, labels)
        sample = self._gauges.get(key)
        if sample is None:
            sample = self._gauges[key] = Gauge()
        return sample

    def histogram(self, name: str, **labels) -> Histogram:
        key = sample_key(name, labels)
        sample = self._histograms.get(key)
        if sample is None:
            sample = self._histograms[key] = Histogram()
        return sample

    def counter_value(self, name: str, **labels) -> int:
        sample = self._counters.get(sample_key(name, labels))
        return sample.value if sample is not None else 0

    # -- snapshots ---------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The JSON-able merged view of this registry.

        Zero-valued local samples are emitted (a counter that exists is
        a fact worth exposing); empty local histograms are not, so a
        registry that merely *queried* a histogram stays invisible.
        """
        histograms: dict[str, list[dict]] = {}
        for key, states in self._foreign_sketches.items():
            histograms[key] = list(states)
        for key, sample in self._histograms.items():
            if sample.sketch.count:
                histograms.setdefault(key, []).append(sample.sketch.to_dict())
        return {
            "counters": {
                key: sample.value
                for key, sample in sorted(self._counters.items())
            },
            "gauges": {
                key: sample.value
                for key, sample in sorted(self._gauges.items())
            },
            "histograms": {
                key: _canonical_sketches(states)
                for key, states in sorted(histograms.items())
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a remote snapshot into this registry."""
        snapshot = validate_snapshot(snapshot)
        for key, value in snapshot["counters"].items():
            self._counters.setdefault(key, Counter()).inc(value)
        for key, value in snapshot["gauges"].items():
            self._gauges.setdefault(key, Gauge()).high_water(value)
        for key, states in snapshot["histograms"].items():
            self._foreign_sketches.setdefault(key, []).extend(states)


def validate_snapshot(snapshot: dict) -> dict:
    """Normalize a snapshot dict, raising on structural nonsense."""
    if not isinstance(snapshot, dict):
        raise ConfigError(
            f"metrics snapshot must be an object, got {snapshot!r}"
        )
    clean: dict = {}
    for section in SNAPSHOT_SECTIONS:
        value = snapshot.get(section, {})
        if not isinstance(value, dict):
            raise ConfigError(
                f"metrics snapshot section {section!r} must be an object,"
                f" got {value!r}"
            )
        clean[section] = value
    return clean


def _canonical_sketches(states: list[dict]) -> list[dict]:
    """Multiset canonical form: sorted by serialized content."""
    return sorted(states, key=lambda state: json.dumps(state, sort_keys=True))


def merge_snapshots(left: dict, right: dict) -> dict:
    """The associative, commutative merge of two snapshots."""
    left = validate_snapshot(left)
    right = validate_snapshot(right)
    counters = dict(left["counters"])
    for key, value in right["counters"].items():
        counters[key] = counters.get(key, 0) + value
    gauges = dict(left["gauges"])
    for key, value in right["gauges"].items():
        gauges[key] = max(gauges.get(key, value), value)
    histograms = {
        key: list(states) for key, states in left["histograms"].items()
    }
    for key, states in right["histograms"].items():
        histograms.setdefault(key, []).extend(states)
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": {
            key: _canonical_sketches(states)
            for key, states in sorted(histograms.items())
        },
    }


def histogram_stats(states: list[dict]) -> dict:
    """Merged-histogram summary: count/total/max plus weighted quantiles.

    Quantiles of a multiset of P² sketches are count-weighted averages of
    the member sketches' quantile estimates — the standard mergeable
    approximation (each sketch summarizes a disjoint sample).
    """
    count = sum(int(state.get("count", 0)) for state in states)
    if not count:
        return {"count": 0, "total": 0.0, "max": 0.0, "quantiles": {}}
    total = sum(float(state.get("total", 0.0)) for state in states)
    max_value = max(float(state.get("max", 0.0)) for state in states)
    quantile_keys: set[str] = set()
    for state in states:
        quantile_keys.update(state.get("quantiles", {}))
    quantiles = {}
    for key in sorted(quantile_keys):
        weighted = 0.0
        for state in states:
            payload = state.get("quantiles", {}).get(key)
            if payload is None:
                continue
            estimate = P2Quantile.from_dict(payload).result()
            weighted += estimate * int(state.get("count", 0))
        quantiles[key] = weighted / count
    return {
        "count": count,
        "total": total,
        "max": max_value,
        "quantiles": quantiles,
    }


def record_serving_metrics(registry: MetricsRegistry, report) -> None:
    """Count one serving-shaped report's frame outcomes into ``registry``.

    These are the counters the cluster ``metrics`` verb exposes and the
    future autoscaler polls (ROADMAP item 5a): offered/completed/dropped/
    missed/preempted frame totals, exact across merges because they are
    integer sums.
    """
    registry.counter("frames_offered_total").inc(report.offered)
    registry.counter("frames_completed_total").inc(report.completed)
    registry.counter("frames_dropped_total").inc(report.dropped)
    registry.counter("frames_missed_total").inc(report.missed)
    registry.counter("frames_preempted_total").inc(report.preempted)


def record_report_metrics(registry: MetricsRegistry, report) -> None:
    """Count one executed report of any kind into ``registry``."""
    kind = getattr(report, "kind", None)
    if not kind:
        kind = type(report).__name__.lower().removesuffix("report") or "report"
    registry.counter("reports_total", kind=str(kind)).inc()
    if hasattr(report, "offered"):
        record_serving_metrics(registry, report)
    elif hasattr(report, "preemptions"):
        registry.counter("frames_preempted_total").inc(
            sum(
                1
                for record in report.preemptions
                if record.action == "deschedule"
            )
        )


def render_prometheus(snapshot: dict, *, prefix: str = "repro") -> str:
    """Prometheus text exposition (v0.0.4) of one snapshot.

    Counters become ``<prefix>_<name>``; histograms become summaries with
    ``quantile`` labels, ``_count`` and ``_sum`` series.
    """
    snapshot = validate_snapshot(snapshot)
    lines: list[str] = []
    typed: set[str] = set()

    def emit_type(key: str, kind: str) -> str:
        name, _brace, labels = key.partition("{")
        family = f"{prefix}_{name}"
        if family not in typed:
            typed.add(family)
            lines.append(f"# TYPE {family} {kind}")
        return f"{family}{'{' + labels if labels else ''}"

    for key, value in snapshot["counters"].items():
        lines.append(f"{emit_type(key, 'counter')} {value}")
    for key, value in snapshot["gauges"].items():
        lines.append(f"{emit_type(key, 'gauge')} {_format(value)}")
    for key, states in snapshot["histograms"].items():
        stats = histogram_stats(states)
        name, _brace, labels = key.partition("{")
        family = f"{prefix}_{name}"
        if family not in typed:
            typed.add(family)
            lines.append(f"# TYPE {family} summary")
        base_labels = labels[:-1] if labels else ""
        for quantile_key, value in stats["quantiles"].items():
            quantile = float(quantile_key) / 100.0
            parts = [part for part in (base_labels,) if part]
            parts.append(f'quantile="{quantile:g}"')
            lines.append(f"{family}{{{','.join(parts)}}} {_format(value)}")
        suffix = f"{{{base_labels}}}" if base_labels else ""
        lines.append(f"{family}_count{suffix} {stats['count']}")
        lines.append(f"{family}_sum{suffix} {_format(stats['total'])}")
    return "\n".join(lines) + ("\n" if lines else "")


def _format(value: float) -> str:
    return f"{value:.9g}"


__all__ = [
    "SNAPSHOT_SECTIONS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "histogram_stats",
    "merge_snapshots",
    "record_report_metrics",
    "record_serving_metrics",
    "render_prometheus",
    "sample_key",
    "validate_snapshot",
]
