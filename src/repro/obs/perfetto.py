"""Chrome-trace-event export: open simulator timelines in ui.perfetto.dev.

:func:`export_chrome_trace` renders a :class:`~repro.obs.trace.Tracer`
(or any iterable of :class:`~repro.obs.trace.TraceEvent`) into the
Chrome trace event format (the JSON Perfetto ingests natively):

* one **thread track per stream** carrying complete (``ph="X"``) slices
  for every kernel execution, with queueing rendered as async
  (``ph="b"``/``"e"``) spans from the frame's release to its dispatch;
* one **counter track per resource kind** (SIMD/ARRAY/TC/TRANSFER/...)
  stepping the number of resident kernels claiming that resource, which
  Perfetto draws as a utilization area chart;
* **instant events** (``ph="i"``) for drops, aborts, and preemption
  deschedules, labeled with the QoS reason.

Timestamps are microseconds (the format's unit); simulation time starts
at 0 so traces from different runs line up when opened side by side.
:func:`validate_chrome_trace` is the schema gate CI runs on the exported
``fig9_preemption`` trace.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ConfigError

#: Fixed process ids so track grouping is stable across exports.
STREAM_PID = 1
QUEUE_PID = 1
RESOURCE_PID = 2

#: ph="i" scope: thread-scoped so the arrow lands on the stream's track.
INSTANT_SCOPE = "t"

_INSTANT_KINDS = ("drop", "abort", "deschedule")


def _us(seconds: float) -> float:
    return seconds * 1e6


def export_chrome_trace(trace, *, name: str = "repro") -> dict:
    """The Chrome trace-event payload for one recorded trace."""
    events = trace.events if hasattr(trace, "events") else tuple(trace)
    stream_tids: dict[str, int] = {}
    open_spans: dict[int, object] = {}
    resource_level: dict[str, int] = {}
    trace_events: list[dict] = []

    def tid(stream: str) -> int:
        if stream not in stream_tids:
            stream_tids[stream] = len(stream_tids) + 1
            trace_events.append(
                {
                    "ph": "M",
                    "pid": STREAM_PID,
                    "tid": stream_tids[stream],
                    "name": "thread_name",
                    "args": {"name": f"stream {stream}"},
                }
            )
        return stream_tids[stream]

    def bump_resources(event, step: int) -> None:
        for kind in event.resources:
            resource_level[kind] = resource_level.get(kind, 0) + step
            trace_events.append(
                {
                    "ph": "C",
                    "pid": RESOURCE_PID,
                    "tid": 0,
                    "ts": _us(event.time_s),
                    "name": f"resource {kind}",
                    "args": {"resident": resource_level[kind]},
                }
            )

    trace_events.append(
        {
            "ph": "M",
            "pid": STREAM_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": f"{name}: streams"},
        }
    )
    trace_events.append(
        {
            "ph": "M",
            "pid": RESOURCE_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": f"{name}: resources"},
        }
    )

    for event in events:
        if event.kind == "begin":
            open_spans[event.uid] = event
            if event.release_s is not None and event.release_s < event.time_s:
                trace_events.append(
                    {
                        "ph": "b",
                        "cat": "queue",
                        "id": event.uid,
                        "pid": QUEUE_PID,
                        "tid": tid(event.stream),
                        "ts": _us(event.release_s),
                        "name": f"queue {event.name}",
                        "args": {"frame": event.frame},
                    }
                )
                trace_events.append(
                    {
                        "ph": "e",
                        "cat": "queue",
                        "id": event.uid,
                        "pid": QUEUE_PID,
                        "tid": tid(event.stream),
                        "ts": _us(event.time_s),
                        "name": f"queue {event.name}",
                    }
                )
            bump_resources(event, +1)
        elif event.kind == "end":
            begin = open_spans.pop(event.uid, None)
            if begin is None:
                raise ConfigError(
                    f"trace ends kernel uid={event.uid} that never began"
                )
            trace_events.append(
                {
                    "ph": "X",
                    "cat": "kernel",
                    "pid": STREAM_PID,
                    "tid": tid(event.stream),
                    "ts": _us(begin.time_s),
                    "dur": _us(event.time_s - begin.time_s),
                    "name": event.name,
                    "args": {
                        "frame": event.frame,
                        "mode": event.mode,
                        "uid": event.uid,
                    },
                }
            )
            bump_resources(_AtTime(begin.resources, event.time_s), -1)
        elif event.kind == "switch":
            trace_events.append(
                {
                    "ph": "i",
                    "s": INSTANT_SCOPE,
                    "cat": "switch",
                    "pid": STREAM_PID,
                    "tid": tid(event.stream),
                    "ts": _us(event.time_s),
                    "name": f"mode switch -> {event.mode}",
                    "args": {
                        "frame": event.frame,
                        "cost_us": _us(event.cost_s or 0.0),
                    },
                }
            )
        elif event.kind in _INSTANT_KINDS:
            trace_events.append(
                {
                    "ph": "i",
                    "s": INSTANT_SCOPE,
                    "cat": event.kind,
                    "pid": STREAM_PID,
                    "tid": tid(event.stream),
                    "ts": _us(event.time_s),
                    "name": f"{event.kind} {event.name}",
                    "args": {
                        "frame": event.frame,
                        "reason": event.reason or "",
                    },
                }
            )
        else:
            raise ConfigError(f"unknown trace event kind {event.kind!r}")

    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


class _AtTime:
    """A begin event's resources re-timestamped to the matching end."""

    __slots__ = ("resources", "time_s")

    def __init__(self, resources, time_s):
        self.resources = resources
        self.time_s = time_s


def validate_chrome_trace(payload: dict) -> dict:
    """Schema-check an exported payload; returns per-phase event counts.

    Raises :class:`~repro.errors.ConfigError` on any malformed event —
    the CI smoke job runs this over the ``fig9_preemption`` export.
    """
    if not isinstance(payload, dict):
        raise ConfigError(f"chrome trace must be an object, got {payload!r}")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ConfigError("chrome trace needs a traceEvents array")
    counts: dict[str, int] = {}
    for event in events:
        if not isinstance(event, dict):
            raise ConfigError(f"trace event must be an object, got {event!r}")
        ph = event.get("ph")
        if ph not in ("X", "C", "i", "M", "b", "e"):
            raise ConfigError(f"unsupported trace event phase {ph!r}")
        if "pid" not in event or "name" not in event:
            raise ConfigError(f"trace event missing pid/name: {event!r}")
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ConfigError(f"trace event has bad ts: {event!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ConfigError(f"complete event has bad dur: {event!r}")
        if ph == "i" and event.get("s") not in ("t", "p", "g"):
            raise ConfigError(f"instant event has bad scope: {event!r}")
        counts[ph] = counts.get(ph, 0) + 1
    return counts


def save_chrome_trace(trace, path: "str | Path", *, name: str = "repro") -> Path:
    """Export ``trace`` and write the JSON payload to ``path``."""
    payload = export_chrome_trace(trace, name=name)
    path = Path(path)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


__all__ = [
    "INSTANT_SCOPE",
    "QUEUE_PID",
    "RESOURCE_PID",
    "STREAM_PID",
    "export_chrome_trace",
    "save_chrome_trace",
    "validate_chrome_trace",
]
