"""Cooperative-group style warp-set synchronization (paper SS IV-C).

The double-buffered SMA GEMM uses 64 warps per thread block, divided into
two sets that alternate between loading tiles (SIMD mode) and computing
(systolic mode via LSMA). The sets synchronize through fine-grained named
barriers — CUDA cooperative groups — rather than whole-block barriers, so
a set never waits on work it does not depend on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MappingError

#: Group ids used by the SMA kernel traces.
GROUP_LOADERS = 0
GROUP_COMPUTERS = 1
GROUP_ALL = 2


@dataclass(frozen=True)
class WarpSetPartition:
    """The two warp sets of the double-buffered mapping."""

    loaders: frozenset[int]
    computers: frozenset[int]

    @property
    def all_warps(self) -> frozenset[int]:
        return self.loaders | self.computers

    def set_of(self, warp_id: int) -> str:
        if warp_id in self.loaders:
            return "loaders"
        if warp_id in self.computers:
            return "computers"
        raise MappingError(f"warp {warp_id} is in neither set")


def partition_warps(num_warps: int) -> WarpSetPartition:
    """Split warps into two equal sets (first half loads, second computes)."""
    if num_warps < 2 or num_warps % 2:
        raise MappingError(
            f"double buffering needs an even warp count >= 2, got {num_warps}"
        )
    half = num_warps // 2
    return WarpSetPartition(
        loaders=frozenset(range(half)),
        computers=frozenset(range(half, num_warps)),
    )


def make_double_buffer_groups(num_warps: int) -> dict[int, frozenset[int]]:
    """Cooperative-group table for :class:`repro.gpu.sm.KernelSpec`."""
    partition = partition_warps(num_warps)
    return {
        GROUP_LOADERS: partition.loaders,
        GROUP_COMPUTERS: partition.computers,
        GROUP_ALL: partition.all_warps,
    }
