"""GEMM mapping onto SMA (paper SS IV-C, Fig 6) as SM pipeline traces.

Per thread block: a 128x128 ``Csub`` in the register file; 64 warps split
into a loader set and a compute set working double-buffered. Each
K-iteration the loaders stream the next ``Atile`` (128x8) and ``Btile``
(8x128) from global to shared memory in SIMD mode while the compute set
drives the systolic units: the Btile is cut into 8 x <unit-width>
sub-tiles, and one LSMA per sub-tile streams all 128 A rows through a unit.
Warp sets meet at a cooperative-group barrier per iteration.

The sub-tile count rarely divides the unit count evenly — e.g. 16 FP32
sub-tiles over 3 units leaves two units idle in the last round — which is
exactly the sub-linear 3-SMA scaling visible in the paper's Fig 8.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.mathutil import ceil_div
from repro.config import GpuConfig, SmaConfig
from repro.errors import MappingError
from repro.gemm.tiling import TilingPlan
from repro.gpu.sm import KernelSpec
from repro.isa.instructions import MemSpace, coalesced_access
from repro.isa.program import ProgramBuilder, WarpProgram
from repro.sma.controller import SystolicControllerModel
from repro.sma.sync import GROUP_ALL, make_double_buffer_groups, partition_warps
from repro.systolic.dataflow import Dataflow

#: Bytes one warp-wide coalesced access moves (32 lanes x 4 B).
WARP_ACCESS_BYTES = 128


@dataclass(frozen=True)
class SmaKernelShape:
    """Static shape facts of the Fig 6 mapping for one configuration."""

    num_warps: int
    tile_m: int
    tile_n: int
    k_slice: int
    unit_width: int
    units: int
    subtiles: int           # B sub-tiles per K-iteration
    rounds: int             # sequential LSMA rounds per unit per iteration

    @property
    def lsma_per_iteration(self) -> int:
        return self.subtiles

    @property
    def round_utilization(self) -> float:
        """Fraction of unit-round slots doing useful work."""
        return self.subtiles / float(self.rounds * self.units)


class SmaGemmMapper:
    """Builds double-buffered SMA GEMM kernels for the SM pipeline."""

    def __init__(
        self,
        gpu: GpuConfig,
        sma: SmaConfig,
        dataflow: Dataflow = Dataflow.SEMI_BROADCAST_WS,
        scheduler: str = "sma_rr",
        num_warps: int = 64,
        sync_per_lsma: bool = False,
    ) -> None:
        self.gpu = gpu
        self.sma = sma
        self.dataflow = dataflow
        self.scheduler = scheduler
        self.num_warps = num_warps
        # Ablation: TC-style strictly synchronous semantics — the issuing
        # warp drains the array after every LSMA instead of once per
        # iteration (paper SS IV-B argues asynchrony is what enables the
        # fine-grained SIMD-systolic collaboration).
        self.sync_per_lsma = sync_per_lsma

    # -- shape arithmetic ----------------------------------------------------------
    def kernel_shape(self, plan: TilingPlan) -> SmaKernelShape:
        unit_width = self.sma.effective_cols
        if plan.k_slice != self.sma.array_rows:
            raise MappingError(
                f"SMA mapping needs K-slice == array depth "
                f"({self.sma.array_rows}), plan has {plan.k_slice}"
            )
        subtiles = plan.subtiles_per_iteration(unit_width)
        rounds = ceil_div(subtiles, self.sma.units_per_sm)
        return SmaKernelShape(
            num_warps=self.num_warps,
            tile_m=plan.tile_m,
            tile_n=plan.tile_n,
            k_slice=plan.k_slice,
            unit_width=unit_width,
            units=self.sma.units_per_sm,
            subtiles=subtiles,
            rounds=rounds,
        )

    def make_controller(self, plan: TilingPlan) -> SystolicControllerModel:
        """Controller with the double-buffer store traffic as background."""
        shape = self.kernel_shape(plan)
        staged_bytes = (
            plan.tile_m * plan.k_slice + plan.k_slice * plan.tile_n
        ) * plan.problem.dtype.bytes
        staged_words = staged_bytes / 4.0
        approx_iteration_cycles = shape.rounds * (
            plan.tile_m + plan.k_slice + self.sma.array_rows // 2
        )
        background = staged_words / max(1.0, approx_iteration_cycles)
        return SystolicControllerModel(
            self.sma,
            dataflow=self.dataflow,
            background_sts_words_per_cycle=background,
        )

    # -- trace generation ------------------------------------------------------------
    def build_kernel(self, plan: TilingPlan, iterations: int) -> KernelSpec:
        """Sample-window kernel: prologue + ``iterations`` K-iterations + epilogue."""
        if iterations <= 0:
            raise MappingError("need at least one K-iteration in the window")
        shape = self.kernel_shape(plan)
        partition = partition_warps(self.num_warps)
        loaders = sorted(partition.loaders)
        computers = sorted(partition.computers)
        masters = computers[: shape.units]

        staged_bytes = (
            plan.tile_m * plan.k_slice + plan.k_slice * plan.tile_n
        ) * plan.problem.dtype.bytes
        total_stage_ops = ceil_div(staged_bytes, WARP_ACCESS_BYTES)
        ldg_per_loader = ceil_div(total_stage_ops, len(loaders))

        writeback_bytes = plan.tile_m * plan.tile_n * 4
        stg_per_warp = ceil_div(
            ceil_div(writeback_bytes, WARP_ACCESS_BYTES), self.num_warps
        )

        programs: list[WarpProgram] = []
        for warp_id in range(self.num_warps):
            if warp_id in partition.loaders:
                program = self._loader_program(
                    warp_id, iterations, ldg_per_loader, stg_per_warp
                )
            else:
                unit_id = masters.index(warp_id) if warp_id in masters else None
                program = self._computer_program(
                    warp_id, iterations, shape, unit_id, stg_per_warp
                )
            programs.append(program)

        return KernelSpec(
            name=f"sma_gemm[{plan.problem}]x{iterations}",
            programs=programs,
            groups=make_double_buffer_groups(self.num_warps),
            scheduler=self.scheduler,
            lsma_engine=self.make_controller(plan),
        )

    def _loader_program(
        self,
        warp_id: int,
        iterations: int,
        ldg_per_loader: int,
        stg_per_warp: int,
    ) -> WarpProgram:
        builder = ProgramBuilder(f"sma_loader_w{warp_id}")
        addr = 1
        builder.mov(addr, 0, tag="base_addr")
        # Prologue: fill buffer 0.
        self._emit_stage(builder, warp_id, 0, ldg_per_loader, addr)
        builder.cgsync(GROUP_ALL, tag="prologue")
        for iteration in range(iterations):
            self._emit_stage(builder, warp_id, iteration + 1, ldg_per_loader, addr)
            builder.cgsync(GROUP_ALL, tag=f"iter{iteration}")
        self._emit_writeback(builder, warp_id, stg_per_warp, addr)
        builder.exit()
        return builder.build()

    def _computer_program(
        self,
        warp_id: int,
        iterations: int,
        shape: SmaKernelShape,
        unit_id: int | None,
        stg_per_warp: int,
    ) -> WarpProgram:
        builder = ProgramBuilder(f"sma_compute_w{warp_id}")
        a_addr, c_addr, b_val, height = 1, 2, 3, 4
        builder.mov(a_addr, 0)
        builder.mov(c_addr, 0)
        builder.mov(b_val, 0)
        builder.mov(height, 0)
        builder.cgsync(GROUP_ALL, tag="prologue")
        for iteration in range(iterations):
            if unit_id is not None:
                for round_index in range(shape.rounds):
                    subtile = round_index * shape.units + unit_id
                    if subtile >= shape.subtiles:
                        continue
                    builder.lsma(
                        a_addr,
                        c_addr,
                        b_val,
                        height,
                        k_extent=shape.tile_m,
                        unit_id=unit_id,
                        tag=f"iter{iteration}_sub{subtile}",
                    )
                    if self.sync_per_lsma:
                        builder.smawait(tag=f"iter{iteration}_sync{subtile}")
                builder.smawait(tag=f"iter{iteration}")
            builder.cgsync(GROUP_ALL, tag=f"iter{iteration}")
        self._emit_writeback(builder, warp_id, stg_per_warp, a_addr)
        builder.exit()
        return builder.build()

    def _emit_stage(
        self,
        builder: ProgramBuilder,
        warp_id: int,
        buffer_index: int,
        ops: int,
        addr_reg: int,
    ) -> None:
        """One loader warp's share of global->shared tile staging."""
        smem_base = (buffer_index % 2) * 8192 + warp_id * 128
        global_base = buffer_index * 65536 + warp_id * 128
        for op in range(ops):
            data = builder.fresh()
            builder.imad(addr_reg, addr_reg, 0, 0, tag="addr")
            builder.ldg(
                data,
                coalesced_access(MemSpace.GLOBAL, global_base + op * 4096),
                addr_reg,
                tag="stage_ldg",
            )
            builder.sts(
                coalesced_access(
                    MemSpace.SHARED, smem_base + op * 4096, is_store=True
                ),
                data,
                addr_reg,
                tag="stage_sts",
            )

    def _emit_writeback(
        self,
        builder: ProgramBuilder,
        warp_id: int,
        ops: int,
        addr_reg: int,
    ) -> None:
        """Epilogue: stream this warp's Csub rows to global memory."""
        base = warp_id * 1024
        for op in range(ops):
            builder.stg(
                coalesced_access(
                    MemSpace.GLOBAL, base + op * WARP_ACCESS_BYTES, is_store=True
                ),
                addr_reg,
                addr_reg,
                tag="writeback",
            )
