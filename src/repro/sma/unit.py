"""One SMA unit: SIMD lanes reconfigurable into a systolic array.

In SIMD mode the unit's 64 FP32 (or 128 FP16) MAC units behave as ordinary
CUDA cores; in systolic mode they form an 8x8 (or 8x16) semi-broadcast
weight-stationary array whose stationary weights live in the repurposed
operand collectors (paper Fig 5C). This class carries the functional array
plus the mode tracker; kernel-level timing goes through
:class:`repro.sma.controller.SystolicControllerModel`.
"""

from __future__ import annotations

import numpy as np

from repro.config import SmaConfig
from repro.errors import MappingError
from repro.sma.lsma import execute_lsma
from repro.sma.mode import ExecutionMode, ModeSwitchTracker
from repro.systolic.array import GemmRunResult, SystolicArray
from repro.systolic.dataflow import Dataflow


class SmaUnit:
    """A reconfigurable MAC-unit cluster (one of 2-3 per SM)."""

    def __init__(
        self,
        config: SmaConfig | None = None,
        dataflow: Dataflow = Dataflow.SEMI_BROADCAST_WS,
    ) -> None:
        self.config = config or SmaConfig()
        self.dataflow = dataflow
        self.tracker = ModeSwitchTracker(self.config)
        if dataflow is Dataflow.SEMI_BROADCAST_WS:
            rows, cols = self.config.effective_cols, self.config.array_rows
        else:
            rows, cols = self.config.array_rows, self.config.effective_cols
        self._array = SystolicArray(rows=rows, cols=cols, dataflow=dataflow)

    @property
    def mode(self) -> ExecutionMode:
        return self.tracker.mode

    @property
    def array_shape(self) -> tuple[int, int]:
        """(K, N): reduction depth by output width."""
        return self.config.array_rows, self.config.effective_cols

    def enter_systolic_mode(self) -> float:
        """Reconfigure to systolic mode; returns the switch cost in cycles."""
        return self.tracker.switch_to(ExecutionMode.SYSTOLIC)

    def enter_simd_mode(self) -> float:
        """Reconfigure back to SIMD lanes."""
        return self.tracker.switch_to(ExecutionMode.SIMD)

    def run_lsma(
        self,
        a_tile: np.ndarray,
        b_subtile: np.ndarray,
        c_slice: np.ndarray | None = None,
    ) -> tuple[np.ndarray, GemmRunResult]:
        """Functionally execute one LSMA on this unit's array.

        Returns the accumulated C slice and the array-level run result
        (cycle counts, access counts). The unit must be in systolic mode.
        """
        if self.mode is not ExecutionMode.SYSTOLIC:
            raise MappingError(
                "LSMA issued while the unit is in SIMD mode; call"
                " enter_systolic_mode() first (temporal integration)"
            )
        k_rows, n_cols = self.array_shape
        if b_subtile.shape != (k_rows, n_cols):
            raise MappingError(
                f"B sub-tile {b_subtile.shape} does not fit the"
                f" {k_rows}x{n_cols} array"
            )
        result_c = execute_lsma(a_tile, b_subtile, c_slice, self.dataflow)
        timing = self._array.run_gemm(a_tile, b_subtile)
        self.tracker.account(timing.cycles)
        return result_c, timing

    def simd_flops_per_cycle(self) -> int:
        """Peak FLOPs/cycle the same lanes deliver in SIMD mode."""
        return 2 * self.config.macs_per_cycle_per_unit
