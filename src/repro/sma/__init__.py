"""SMA: the Simultaneous Multi-mode Architecture (the paper's contribution).

An SMA-enabled SM temporally switches its MAC units between the ordinary
SIMD mode and a systolic mode built from the same resources: three 8x8 FP32
(or 8x16 FP16) semi-broadcast weight-stationary arrays driven by the
asynchronous ``LSMA`` instruction and a dedicated systolic controller.
"""

from repro.sma.controller import SystolicControllerModel
from repro.sma.lsma import LsmaOperation, execute_lsma
from repro.sma.mapping import SmaGemmMapper, SmaKernelShape
from repro.sma.mode import ExecutionMode, ModeSwitchTracker
from repro.sma.sync import WarpSetPartition, make_double_buffer_groups
from repro.sma.unit import SmaUnit

__all__ = [
    "ExecutionMode",
    "LsmaOperation",
    "ModeSwitchTracker",
    "SmaGemmMapper",
    "SmaKernelShape",
    "SmaUnit",
    "SystolicControllerModel",
    "WarpSetPartition",
    "execute_lsma",
    "make_double_buffer_groups",
]
