"""Temporal execution modes and the reconfiguration cost tracker.

The paper's key design principle (SS III-A) is *temporal* integration: the
same MAC units serve either the SIMD pipelines or the systolic arrays, and
the SM switches between modes at runtime with near-zero overhead. The
tracker counts switches and charges the (small, configurable) switch cost
so the end-to-end experiments can report how cheap temporal integration is
compared to spatially idling half of the chip.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.config import SmaConfig
from repro.errors import SimulationError


class ExecutionMode(enum.Enum):
    SIMD = "simd"
    SYSTOLIC = "systolic"


@dataclass
class ModeSwitchTracker:
    """Counts mode transitions and accumulated reconfiguration cycles."""

    config: SmaConfig
    mode: ExecutionMode = ExecutionMode.SIMD
    switches: int = 0
    reconfiguration_cycles: float = 0.0
    cycles_in_mode: dict[str, float] = field(
        default_factory=lambda: {"simd": 0.0, "systolic": 0.0}
    )

    def switch_to(self, mode: ExecutionMode) -> float:
        """Switch modes; returns the cycle cost of this transition."""
        if not isinstance(mode, ExecutionMode):
            raise SimulationError(f"not an execution mode: {mode!r}")
        if mode is self.mode:
            return 0.0
        self.mode = mode
        self.switches += 1
        cost = float(self.config.reconfiguration_cycles)
        self.reconfiguration_cycles += cost
        return cost

    def account(self, cycles: float) -> None:
        """Attribute ``cycles`` of execution to the current mode."""
        if cycles < 0:
            raise SimulationError("cannot account negative cycles")
        self.cycles_in_mode[self.mode.value] += cycles

    @property
    def total_cycles(self) -> float:
        return (
            self.cycles_in_mode["simd"]
            + self.cycles_in_mode["systolic"]
            + self.reconfiguration_cycles
        )

    def overhead_fraction(self) -> float:
        """Reconfiguration cycles as a fraction of all cycles."""
        total = self.total_cycles
        if total <= 0:
            return 0.0
        return self.reconfiguration_cycles / total
