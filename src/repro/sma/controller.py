"""The dedicated systolic controller (paper Fig 5A, SS IV-B).

Once an ``LSMA`` is issued the controller runs the array asynchronously:
it holds an active mask for the PEs and address-generation units that feed
matrix A from the unit's 8 reserved shared-memory banks (uncoalesced
diagonal reads) and write matrix C rows to one register-file bank
(coalesced). This class implements :class:`repro.gpu.sm.LsmaEngine`: the
SM pipeline hands it LSMA instructions and waits on ``SMAWAIT``.

Timing comes from the dataflow analysis (`repro.systolic.dataflow`): the
semi-broadcast dataflow streams one A row per cycle with conflict-free
reserved banks, while the TPU-style weight-stationary dataflow must stage
its diagonal C drain through the general shared-memory banks, stretching
the stream and stealing LSU cycles from the double-buffer loads.
"""

from __future__ import annotations

from functools import lru_cache

from repro.common.stats import CounterBag
from repro.config import DataType, SmaConfig
from repro.errors import SimulationError
from repro.gpu.sm import LsmaEngine, LsmaIssue
from repro.systolic.dataflow import Dataflow, analyze_dataflow_cost


@lru_cache(maxsize=512)
def _stream_cost(
    dataflow: Dataflow,
    stream_rows: int,
    array_k: int,
    array_n: int,
    a_banks: int,
    background_sts: float,
) -> tuple[float, float]:
    """(cycles, lsu_overhead) for one LSMA's streaming phase."""
    cost = analyze_dataflow_cost(
        dataflow,
        m_extent=stream_rows,
        k_extent=array_k,
        n_extent=array_n,
        a_banks=a_banks,
        background_sts_words_per_cycle=background_sts,
    )
    # The staged C traffic of the weight-stationary dataflow is already
    # folded into the contention factor by the bank analysis; the residual
    # LSU interference charged to the SIMD side is the fraction of staged
    # words that exceeds the A-feed's reserved banks.
    lsu_overhead = 0.0
    if dataflow is Dataflow.WEIGHT_STATIONARY:
        staged_words = 2.0 * stream_rows * array_n
        lsu_overhead = staged_words / 32.0 * 0.1
    return cost.total_cycles, lsu_overhead


class SystolicControllerModel(LsmaEngine):
    """Per-SM controller managing ``units_per_sm`` systolic arrays."""

    def __init__(
        self,
        config: SmaConfig,
        dataflow: Dataflow = Dataflow.SEMI_BROADCAST_WS,
        background_sts_words_per_cycle: float = 16.0,
        weight_load_exposed_cycles: int | None = None,
    ) -> None:
        self.config = config
        self.dataflow = dataflow
        self.background_sts = background_sts_words_per_cycle
        # The repurposed operand collectors double-buffer the next weights;
        # half of the load is exposed at the sub-tile switch.
        if weight_load_exposed_cycles is None:
            weight_load_exposed_cycles = config.array_rows // 2
        self.weight_load_exposed = weight_load_exposed_cycles
        self._busy_until = [0.0] * config.units_per_sm
        self.lsma_count = 0

    # -- LsmaEngine interface ------------------------------------------------------
    def issue(self, unit_id: int, k_extent: int, now: float) -> LsmaIssue:
        if not (0 <= unit_id < self.config.units_per_sm):
            raise SimulationError(
                f"unit {unit_id} out of range (SM has {self.config.units_per_sm})"
            )
        if k_extent <= 0:
            raise SimulationError("LSMA stream extent must be positive")
        if self._busy_until[unit_id] > now:
            return LsmaIssue(accepted=False)

        array_k = self.config.array_rows
        array_n = self.config.effective_cols
        stream_cycles, lsu_overhead = _stream_cost(
            self.dataflow,
            k_extent,
            array_k,
            array_n,
            self.config.smem_banks_for_sma,
            self.background_sts,
        )
        busy_until = now + self.weight_load_exposed + stream_cycles
        self._busy_until[unit_id] = busy_until
        self.lsma_count += 1

        macs = k_extent * array_k * array_n
        mac_counter = {
            DataType.FP32: "sma_macs_fp32",
            DataType.FP16: "sma_macs_fp16",
            DataType.INT8: "sma_macs_int8",
        }[self.config.dtype]
        counters = CounterBag(
            {
                "sma_macs": macs,
                mac_counter: macs,
                # A feed: K words per streamed row from the reserved banks.
                "smem_read_words": k_extent * array_k,
                # Resident weights: loaded once per LSMA from shared memory.
                "smem_read_words_weights": array_k * array_n,
                # C rows: one read (C[in]) and one write (C[out]) per element
                # against the assigned register-file bank.
                "rf_reads": k_extent * array_n / 32.0,
                "rf_writes": k_extent * array_n / 32.0,
                "lsma_issued": 1,
            }
        )
        counters.add("smem_read_words", array_k * array_n)
        return LsmaIssue(
            accepted=True,
            busy_until=busy_until,
            counters=counters,
            lsu_overhead_cycles=lsu_overhead,
        )

    def idle_at(self, now: float) -> float:
        return max([now] + self._busy_until)

    def reset(self) -> None:
        self._busy_until = [0.0] * self.config.units_per_sm
        self.lsma_count = 0

    # -- introspection ---------------------------------------------------------------
    def unit_busy(self, unit_id: int, now: float) -> bool:
        return self._busy_until[unit_id] > now

    @property
    def storage_bytes(self) -> int:
        """Controller latch storage (paper: 8x8B Ain + 24x8B Cout = 256 B)."""
        return self.config.controller_storage_bytes
