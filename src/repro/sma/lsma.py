"""Functional semantics of the LSMA instruction (paper Eq. 1).

``LSMA B => C[out] <- A[in] x B + C[in]``

One LSMA streams the rows of an A tile (M x K) through a systolic unit
whose resident weights are a B sub-tile (K x N), accumulating into a C
slice (M x N). The computation itself runs on the semi-broadcast
weight-stationary array; this module validates shapes, performs the
functional execution, and describes the four register operands.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MappingError
from repro.systolic.array import SystolicArray
from repro.systolic.dataflow import Dataflow


@dataclass(frozen=True)
class LsmaOperation:
    """The architectural operands of one LSMA instruction.

    Four register operands (paper SS IV-B): the shared-memory address of the
    first A element, the register-file address of the first C element, one
    element value of B (issued per resident weight), and the height of A
    (the flexible K x 8 x 8 shape's streaming extent).
    """

    a_address: int
    c_address: int
    b_height: int          # rows of the resident B sub-tile (array K)
    stream_rows: int       # height of A: rows streamed through the array

    def __post_init__(self) -> None:
        if self.stream_rows <= 0:
            raise MappingError("LSMA must stream at least one A row")
        if self.b_height <= 0:
            raise MappingError("LSMA needs a non-empty resident B tile")


def execute_lsma(
    a_tile: np.ndarray,
    b_subtile: np.ndarray,
    c_slice: np.ndarray | None = None,
    dataflow: Dataflow = Dataflow.SEMI_BROADCAST_WS,
) -> np.ndarray:
    """Run one LSMA functionally: returns ``a_tile @ b_subtile + c_slice``.

    The multiply runs cycle-by-cycle on the systolic array simulator, so
    the result is exactly what the hardware's dataflow would produce.
    """
    a_tile = np.asarray(a_tile, dtype=np.float64)
    b_subtile = np.asarray(b_subtile, dtype=np.float64)
    if a_tile.ndim != 2 or b_subtile.ndim != 2:
        raise MappingError("LSMA operands must be 2-D tiles")
    if a_tile.shape[1] != b_subtile.shape[0]:
        raise MappingError(
            f"LSMA reduction mismatch: A is {a_tile.shape}, B is {b_subtile.shape}"
        )
    k_extent, n_extent = b_subtile.shape
    if dataflow is Dataflow.SEMI_BROADCAST_WS:
        array = SystolicArray(rows=n_extent, cols=k_extent, dataflow=dataflow)
    elif dataflow is Dataflow.WEIGHT_STATIONARY:
        array = SystolicArray(rows=k_extent, cols=n_extent, dataflow=dataflow)
    else:
        raise MappingError(f"LSMA does not support dataflow {dataflow}")
    result = array.run_gemm(a_tile, b_subtile)
    if c_slice is None:
        return result.c
    c_slice = np.asarray(c_slice, dtype=np.float64)
    if c_slice.shape != result.c.shape:
        raise MappingError(
            f"C slice shape {c_slice.shape} != product shape {result.c.shape}"
        )
    return result.c + c_slice
