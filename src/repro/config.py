"""Architecture configurations (paper Table I) for every simulated platform.

The paper's baseline is an NVIDIA Volta V100: 80 SMs, each with 64 FP32 CUDA
cores, 4 TensorCores (256 FP16 MAC units total), 32-bank shared memory
configurable up to 96 KB, and a 256 KB register file. SMA keeps those
resources and re-purposes the MAC units as three 8x8 FP32 (or 8x16 FP16)
systolic arrays per SM.

Everything downstream (pipeline simulators, energy accounting, experiment
harnesses) reads the numbers from these frozen dataclasses; no other module
hard-codes machine parameters.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigError


class DataType(enum.Enum):
    """Numeric formats understood by the MAC-unit models."""

    FP32 = "fp32"
    FP16 = "fp16"
    INT8 = "int8"

    @property
    def bytes(self) -> int:
        return {DataType.FP32: 4, DataType.FP16: 2, DataType.INT8: 1}[self]

    @property
    def fp16_equivalents(self) -> int:
        """How many FP16 MAC units one MAC of this type is worth (area)."""
        return {DataType.FP32: 2, DataType.FP16: 1, DataType.INT8: 1}[self]


@dataclass(frozen=True)
class GpuConfig:
    """A Volta-like streaming-multiprocessor based GPU (paper Table I)."""

    name: str = "volta-v100"
    num_sms: int = 80
    clock_ghz: float = 1.53
    warp_size: int = 32
    max_warps_per_sm: int = 64
    schedulers_per_sm: int = 4

    # Compute resources per SM.
    cuda_cores_per_sm: int = 64          # FP32 FMA units
    tensor_cores_per_sm: int = 4
    fp16_units_per_tensor_core: int = 64  # 4 TCs -> 256 FP16 MACs per SM

    # Memory resources per SM.
    shared_memory_banks: int = 32
    shared_memory_bank_bytes: int = 4     # 32-bit word per bank per cycle
    shared_memory_kb: int = 96
    register_file_kb: int = 256
    register_file_banks: int = 8
    register_bank_width_bytes: int = 128  # one 32-bit value per lane per warp
    operand_collectors: int = 8

    # Cache / DRAM.
    l1_cache_kb: int = 128
    l2_cache_mb: int = 6
    dram_bandwidth_gbps: float = 900.0    # HBM2
    dram_latency_cycles: int = 400
    l2_latency_cycles: int = 190
    l1_latency_cycles: int = 28
    shared_memory_latency_cycles: int = 19

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ConfigError(f"num_sms must be positive, got {self.num_sms}")
        if self.warp_size != 32:
            raise ConfigError("only the CUDA warp size of 32 is supported")
        if self.shared_memory_banks <= 0:
            raise ConfigError("shared_memory_banks must be positive")
        if self.clock_ghz <= 0:
            raise ConfigError("clock_ghz must be positive")

    # -- Derived peak throughput -------------------------------------------------
    @property
    def fp16_units_per_sm(self) -> int:
        return self.tensor_cores_per_sm * self.fp16_units_per_tensor_core

    @property
    def simd_flops_per_cycle_per_sm(self) -> int:
        """FP32 FMA counts as 2 FLOPs."""
        return 2 * self.cuda_cores_per_sm

    @property
    def tc_flops_per_cycle_per_sm(self) -> int:
        """FP16 FMA counts as 2 FLOPs."""
        return 2 * self.fp16_units_per_sm

    @property
    def peak_simd_tflops(self) -> float:
        return self.num_sms * self.simd_flops_per_cycle_per_sm * self.clock_ghz / 1e3

    @property
    def peak_tc_tflops(self) -> float:
        return self.num_sms * self.tc_flops_per_cycle_per_sm * self.clock_ghz / 1e3

    @property
    def shared_memory_bandwidth_bytes_per_cycle(self) -> int:
        return self.shared_memory_banks * self.shared_memory_bank_bytes

    @property
    def register_read_bandwidth_bytes_per_cycle(self) -> int:
        """Aggregate RF read bandwidth per SM per cycle.

        Volta's RF is banked; each bank delivers one 128 B warp-wide operand
        per cycle. Half of the banks are modelled as read ports in a given
        cycle, matching the dual-ported operand-collector organisation.
        """
        return self.register_file_banks * self.register_bank_width_bytes // 2

    @property
    def register_write_bandwidth_bytes_per_cycle(self) -> int:
        return self.register_file_banks * self.register_bank_width_bytes // 4


@dataclass(frozen=True)
class SmaConfig:
    """SMA units layered on a :class:`GpuConfig` (paper SS IV-A).

    Each SMA unit is an 8x8 FP32 systolic array built from 64 FP32-equivalent
    MAC units; in FP16 mode the same area provides an 8x16 array. Three units
    per SM consume the area of 64 CUDA cores + 4 TensorCores (384 FP16-unit
    equivalents).
    """

    units_per_sm: int = 3
    array_rows: int = 8           # K dimension fed from shared memory
    array_cols: int = 8           # N dimension, per FP32 unit
    dtype: DataType = DataType.FP32
    smem_banks_for_sma: int = 8   # banks reserved to stream matrix A
    rf_banks_for_sma: int = 1     # banks used to write matrix C
    controller_storage_bytes: int = 256  # 8x8B Ain + 24x8B Cout latches
    reconfiguration_cycles: int = 8      # temporal mode-switch cost

    def __post_init__(self) -> None:
        if self.units_per_sm <= 0:
            raise ConfigError("units_per_sm must be positive")
        if self.array_rows <= 0 or self.array_cols <= 0:
            raise ConfigError("array dimensions must be positive")
        if self.smem_banks_for_sma <= 0:
            raise ConfigError("smem_banks_for_sma must be positive")

    @property
    def effective_cols(self) -> int:
        """Array width after precision packing (SS IV-A).

        One FP32 MAC lane splits into two FP16 lanes (8x8 -> 8x16) or four
        INT8 lanes (8x8 -> 8x32), following the paper's "can also be built
        from other data types such as INT8".
        """
        packing = {DataType.FP32: 1, DataType.FP16: 2, DataType.INT8: 4}
        return self.array_cols * packing[self.dtype]

    @property
    def macs_per_cycle_per_unit(self) -> int:
        return self.array_rows * self.effective_cols

    @property
    def macs_per_cycle_per_sm(self) -> int:
        return self.units_per_sm * self.macs_per_cycle_per_unit

    @property
    def flops_per_cycle_per_sm(self) -> int:
        return 2 * self.macs_per_cycle_per_sm

    @property
    def fp16_equivalent_units(self) -> int:
        """Area in FP16-MAC equivalents (for iso-area comparisons).

        The physical array is ``rows x cols`` FP32-capable MACs regardless
        of the operating precision, so the area is 2 FP16-equivalents per
        physical lane (SS IV-A precision pairing).
        """
        per_unit = self.array_rows * self.array_cols * 2
        return self.units_per_sm * per_unit


@dataclass(frozen=True)
class TpuConfig:
    """A TPU-like weight-stationary systolic accelerator core."""

    name: str = "tpu-v2-core"
    array_rows: int = 128
    array_cols: int = 128
    clock_ghz: float = 0.7
    on_chip_buffer_mb: int = 24
    weight_fifo_depth: int = 4
    host_transfer_gbps: float = 8.0   # effective PCIe payload bandwidth
    dram_bandwidth_gbps: float = 600.0

    def __post_init__(self) -> None:
        if self.array_rows <= 0 or self.array_cols <= 0:
            raise ConfigError("array dimensions must be positive")
        if self.clock_ghz <= 0:
            raise ConfigError("clock_ghz must be positive")

    @property
    def macs_per_cycle(self) -> int:
        return self.array_rows * self.array_cols

    @property
    def peak_tflops(self) -> float:
        return 2 * self.macs_per_cycle * self.clock_ghz / 1e3


@dataclass(frozen=True)
class CpuConfig:
    """A single general-purpose host core (used for the CRF in Fig 3)."""

    name: str = "host-cpu-core"
    clock_ghz: float = 2.5
    flops_per_cycle: int = 16          # one AVX2 FMA pipe on FP32
    sustained_efficiency: float = 0.35  # achieved / peak on irregular code
    dram_bandwidth_gbps: float = 20.0

    def __post_init__(self) -> None:
        if not (0.0 < self.sustained_efficiency <= 1.0):
            raise ConfigError("sustained_efficiency must be in (0, 1]")

    @property
    def sustained_gflops(self) -> float:
        return (
            self.clock_ghz * self.flops_per_cycle * self.sustained_efficiency
        )


@dataclass(frozen=True)
class SystemConfig:
    """A full platform: GPU (optionally with SMA units), or TPU + host."""

    name: str
    gpu: GpuConfig | None = None
    sma: SmaConfig | None = None
    tpu: TpuConfig | None = None
    cpu: CpuConfig = field(default_factory=CpuConfig)

    def __post_init__(self) -> None:
        if self.gpu is None and self.tpu is None:
            raise ConfigError("a system needs at least a GPU or a TPU")
        if self.sma is not None and self.gpu is None:
            raise ConfigError("SMA units require a GPU substrate")


# ---------------------------------------------------------------------------
# Named configurations used throughout the evaluation.
# ---------------------------------------------------------------------------

def volta_gpu() -> GpuConfig:
    """The paper's baseline Volta GPU (Table I)."""
    return GpuConfig()


def sma_2unit(dtype: DataType = DataType.FP16) -> SmaConfig:
    """Two SMA units per SM: iso-FLOP with 4 TensorCores (256 FP16 units)."""
    return SmaConfig(units_per_sm=2, dtype=dtype)


def sma_3unit(dtype: DataType = DataType.FP16) -> SmaConfig:
    """Three SMA units per SM: iso-area with SIMD + TC (384 FP16 units)."""
    return SmaConfig(units_per_sm=3, dtype=dtype)


def system_gpu_simd() -> SystemConfig:
    """SIMD-only execution on the baseline GPU (no TC, no SMA)."""
    return SystemConfig(name="gpu-simd", gpu=volta_gpu())


def system_gpu_4tc() -> SystemConfig:
    """The baseline GPU using its 4 TensorCores per SM for GEMM."""
    return SystemConfig(name="gpu-4tc", gpu=volta_gpu())


def system_sma(units: int = 3, dtype: DataType = DataType.FP16) -> SystemConfig:
    """A GPU whose MAC units are SMA-reconfigurable (2-SMA or 3-SMA)."""
    if units == 2:
        sma = sma_2unit(dtype)
    elif units == 3:
        sma = sma_3unit(dtype)
    else:
        sma = SmaConfig(units_per_sm=units, dtype=dtype)
    return SystemConfig(name=f"gpu-{units}sma", gpu=volta_gpu(), sma=sma)


def tpu_v2_core() -> TpuConfig:
    """One core of a cloud TPU-v2 (128x128 array, 22.9 peak TFLOPS)."""
    return TpuConfig()


def tpu_v1() -> TpuConfig:
    """The TPU-v1 (256x256 INT8 array) used for dataflow discussion."""
    return TpuConfig(name="tpu-v1", array_rows=256, array_cols=256, clock_ghz=0.7)


def system_tpu() -> SystemConfig:
    """TPU core plus its host CPU (for unsupported ops and transfers)."""
    return SystemConfig(name="tpu", tpu=tpu_v2_core())


ALL_SYSTEMS = {
    "gpu-simd": system_gpu_simd,
    "gpu-4tc": system_gpu_4tc,
    "gpu-2sma": lambda: system_sma(2),
    "gpu-3sma": lambda: system_sma(3),
    "tpu": system_tpu,
}
