#!/usr/bin/env python
"""Quickstart: time one GEMM on every backend of the SMA reproduction.

Runs a 2048^3 GEMM through the cycle-level pipeline on the SIMD baseline,
the 4-TensorCore configuration, and the 2-/3-unit SMA configurations, then
prints per-SM efficiency and speedups — the numbers behind the paper's
Fig 7/Fig 8 headlines.

Usage::

    python examples/quickstart.py [size]
"""

from __future__ import annotations

import sys

from repro import DataType, GemmExecutor, GemmProblem
from repro.common.tables import render_table
from repro.config import system_gpu_simd, system_sma


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 2048
    backends = [
        ("SIMD (FP32 CUDA cores)", GemmExecutor(system_gpu_simd(), "simd"),
         DataType.FP32),
        ("4-TC (TensorCores)", GemmExecutor(system_gpu_simd(), "tc"),
         DataType.FP16),
        ("2-SMA (iso-FLOP)", GemmExecutor(system_sma(2), "sma"),
         DataType.FP16),
        ("3-SMA (iso-area)", GemmExecutor(system_sma(3), "sma"),
         DataType.FP16),
    ]

    rows = []
    baseline_seconds = None
    for label, executor, dtype in backends:
        problem = GemmProblem(size, size, size, dtype=dtype)
        timing = executor.time_gemm(problem)
        if baseline_seconds is None:
            baseline_seconds = timing.seconds
        rows.append(
            [
                label,
                timing.milliseconds,
                timing.tflops,
                timing.sm_efficiency,
                baseline_seconds / timing.seconds,
            ]
        )

    print(
        render_table(
            ["backend", "ms", "tflops", "sm_efficiency", "speedup_vs_simd"],
            rows,
            title=f"GEMM {size}x{size}x{size} on the simulated V100",
        )
    )
    print()
    print("Expected shape (paper Fig 7/8): SMA ~0.89 steady-state efficiency")
    print("vs ~0.68 for the TensorCores; 3-SMA ~1.6x faster than 4-TC.")


if __name__ == "__main__":
    main()
