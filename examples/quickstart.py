#!/usr/bin/env python
"""Quickstart: time one GEMM on every backend through the Session facade.

Runs a 2048^3 GEMM through the cycle-level pipeline on the SIMD baseline,
the 4-TensorCore configuration, and the 2-/3-unit SMA configurations, then
prints per-SM efficiency and speedups — the numbers behind the paper's
Fig 7/Fig 8 headlines. Platforms are addressed by string spec; every
executor shares the session's GEMM-timing cache.

Usage::

    python examples/quickstart.py [size]
"""

from __future__ import annotations

import sys

from repro.api import Session
from repro.common.tables import render_table

BACKENDS = (
    ("SIMD (FP32 CUDA cores)", "gpu-simd"),
    ("4-TC (TensorCores)", "gpu-tc"),
    ("2-SMA (iso-FLOP)", "sma:2"),
    ("3-SMA (iso-area)", "sma:3"),
)


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 2048
    session = Session()

    rows = []
    baseline_seconds = None
    for label, spec in BACKENDS:
        report = session.time_gemm(spec, size)
        if baseline_seconds is None:
            baseline_seconds = report.seconds
        rows.append(
            [
                label,
                report.milliseconds,
                report.tflops,
                report.sm_efficiency,
                baseline_seconds / report.seconds,
            ]
        )

    print(
        render_table(
            ["backend", "ms", "tflops", "sm_efficiency", "speedup_vs_simd"],
            rows,
            title=f"GEMM {size}x{size}x{size} on the simulated V100",
        )
    )
    print()
    print("Expected shape (paper Fig 7/8): SMA ~0.89 steady-state efficiency")
    print("vs ~0.68 for the TensorCores; 3-SMA ~1.6x faster than 4-TC.")


if __name__ == "__main__":
    main()
