#!/usr/bin/env python
"""Hybrid DNN inference across platforms (the paper's Fig 2/3 scenario).

Runs Mask R-CNN and DeepLab — CNN backbones plus GEMM-incompatible
operators (RoIAlign, NMS, ArgMax, CRF) — on the GPU, the TPU (with
compiler lowering and host offload), and the SMA architecture, printing
the per-group latency breakdown for each.

Usage::

    python examples/hybrid_model_inference.py [mask_rcnn|deeplab]
"""

from __future__ import annotations

import sys

from repro.common.tables import render_table
from repro.dnn.zoo import build_deeplab, build_mask_rcnn
from repro.platforms import GpuSimdPlatform, GpuSmaPlatform, TpuPlatform

GROUPS = ("CNN&FC", "RoIAlign", "NMS", "ArgMax", "CRF", "Transfer")


def run_model(name: str) -> None:
    if name == "mask_rcnn":
        graph = build_mask_rcnn()
    else:
        graph = build_deeplab(with_crf=True)

    platforms = [
        GpuSimdPlatform(),
        TpuPlatform(),
        GpuSmaPlatform(3),
    ]
    rows = []
    for platform in platforms:
        result = platform.run_model(graph)
        groups = result.grouped_seconds()
        rows.append(
            [platform.name, result.total_ms]
            + [groups.get(group, 0.0) * 1e3 for group in GROUPS]
        )

    print(
        render_table(
            ["platform", "total_ms"] + [f"{g}_ms" for g in GROUPS],
            rows,
            title=f"{graph.name}: end-to-end latency breakdown",
        )
    )
    print()
    print("Note how the TPU wins on CNN&FC but loses the irregular")
    print("operators to lowering cascades and host transfers, while the")
    print("SMA keeps SIMD-mode programmability for them (paper SS II/V).")


def main() -> None:
    choice = sys.argv[1] if len(sys.argv) > 1 else None
    if choice in (None, "mask_rcnn"):
        run_model("mask_rcnn")
        print()
    if choice in (None, "deeplab"):
        run_model("deeplab")


if __name__ == "__main__":
    main()
