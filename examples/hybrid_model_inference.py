#!/usr/bin/env python
"""Hybrid DNN inference across platforms (the paper's Fig 2/3 scenario).

Runs Mask R-CNN and DeepLab — CNN backbones plus GEMM-incompatible
operators (RoIAlign, NMS, ArgMax, CRF) — on the GPU, the TPU (with
compiler lowering and host offload), and the SMA architecture through one
batched Session request, printing the per-group latency breakdown and the
shared-cache statistics.

Usage::

    python examples/hybrid_model_inference.py [mask_rcnn|deeplab]
"""

from __future__ import annotations

import sys

from repro.api import Session, SimRequest
from repro.common.tables import render_table
from repro.platforms.base import REPORTING_GROUPS as GROUPS

PLATFORMS = ("gpu-simd", "tpu", "sma:3")


def run_model(session: Session, model: str) -> None:
    batch = session.run_batch(
        [SimRequest(platform=spec, model=model) for spec in PLATFORMS]
    )
    rows = []
    for report in batch:
        groups = report.grouped_seconds()
        rows.append(
            [report.platform, report.total_ms]
            + [groups.get(group, 0.0) * 1e3 for group in GROUPS]
        )

    print(
        render_table(
            ["platform", "total_ms"] + [f"{g}_ms" for g in GROUPS],
            rows,
            title=f"{model}: end-to-end latency breakdown",
        )
    )
    print()
    print("Note how the TPU wins on CNN&FC but loses the irregular")
    print("operators to lowering cascades and host transfers, while the")
    print("SMA keeps SIMD-mode programmability for them (paper SS II/V).")


def main() -> None:
    choice = sys.argv[1] if len(sys.argv) > 1 else None
    session = Session()
    if choice in (None, "mask_rcnn"):
        run_model(session, "mask_rcnn")
        print()
    if choice in (None, "deeplab"):
        run_model(session, "deeplab")
    stats = session.cache_stats
    print()
    print(
        f"shared GEMM cache: {stats.hits} hits / {stats.misses} misses"
        f" ({stats.hit_rate:.0%} hit rate)"
    )


if __name__ == "__main__":
    main()
