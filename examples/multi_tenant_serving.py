#!/usr/bin/env python
"""Multi-tenant model serving on one temporally-shared GPU.

Three tenants share one SMA device: a latency-critical detector
(Mask R-CNN), a segmentation service (DeepLab), and a best-effort
classifier (VGG-A) that runs every other frame. The timeline scheduler
shares the MAC substrate by priority, tracks per-tenant frame deadlines,
and reports where every microsecond went — then a sweep re-targets the
same scenario across sma:2..4 to size the deployment, and the SLO
explorer offers the tenants *open-loop* Poisson traffic (with
deadline-slip admission control shedding hopeless frames) to find the
max arrival rate each SMA configuration sustains under a p95 latency
SLO.

Usage::

    python examples/multi_tenant_serving.py [--quick]
"""

from __future__ import annotations

import sys

from repro.api import ScenarioSpec, Session, StreamSpec
from repro.common.tables import render_table
from repro.serving import QosSpec
from repro.serving.slo import explore_slo
from repro.sweep import SweepSpec, run_sweep


def build_scenario(frames: int) -> ScenarioSpec:
    return ScenarioSpec(
        name="multi-tenant-serving",
        frames=frames,
        policy="priority",
        streams=(
            StreamSpec(name="detect", model="mask_rcnn", priority=4.0,
                       period_s=0.200, deadline_s=0.250),
            StreamSpec(name="segment", model="deeplab:nocrf", priority=2.0,
                       period_s=0.200, deadline_s=0.400),
            StreamSpec(name="classify", model="vgg_a", priority=1.0,
                       period_s=0.200, skip_interval=2),
        ),
    )


def main() -> None:
    quick = "--quick" in sys.argv[1:]
    frames = 2 if quick else 4
    scenario = build_scenario(frames)
    session = Session()

    report = session.run_scenario(scenario, "sma:3")
    rows = [
        [
            stream.name,
            stream.model,
            stream.priority,
            f"{stream.frames_run}/{frames}",
            stream.busy_s * 1e3,
            stream.stretch,
            stream.mean_latency_s * 1e3,
            stream.deadline_misses,
        ]
        for stream in report.streams
    ]
    print(
        render_table(
            ["tenant", "model", "prio", "frames", "busy_ms", "stretch",
             "mean_lat_ms", "misses"],
            rows,
            title=f"{scenario.name} on sma:3 ({scenario.policy} policy)",
        )
    )
    occupancy = ", ".join(
        f"{kind} {fraction:.0%}"
        for kind, fraction in sorted(report.occupancy.items())
    )
    print()
    print(
        f"makespan {report.makespan_s * 1e3:.1f} ms over {frames} frames;"
        f" occupancy: {occupancy}"
    )
    print(
        "priority sharing: the detector is stretched"
        f" {report.stream('detect').stretch:.2f}x by co-tenants, the"
        f" best-effort classifier {report.stream('classify').stretch:.2f}x."
    )

    # Size the deployment: the same scenario across SMA configurations.
    print()
    result = session.run_sweep(
        SweepSpec(platforms=("sma:2..4",), scenarios=(scenario,))
    )
    sweep_rows = [
        [
            point.request.platform,
            swept.avg_frame_latency_ms,
            swept.stream("detect").deadline_misses,
            swept.stream("segment").deadline_misses,
        ]
        for point, swept in zip(result.grid.points, result.reports)
    ]
    print(
        render_table(
            ["platform", "avg_frame_ms", "detect_misses", "segment_misses"],
            sweep_rows,
            title="deployment sizing: same tenants, sma:2..4",
        )
    )
    # Open-loop SLO exploration: how much Poisson traffic can each SMA
    # configuration absorb before p95 latency breaks 400 ms? Frames that
    # can no longer meet their deadline are shed by admission control.
    print()
    slo_ms = 400.0
    exploration = explore_slo(
        ScenarioSpec(
            name="multi-tenant-slo",
            frames=3 if quick else 8,
            policy=scenario.policy,
            qos=QosSpec(kind="drop_late"),
            streams=tuple(
                StreamSpec(
                    name=stream.name,
                    model=stream.model,
                    priority=stream.priority,
                    skip_interval=stream.skip_interval,
                    deadline_s=stream.deadline_s or 0.400,
                )
                for stream in scenario.streams
            ),
        ),
        platforms=("sma:2", "sma:3", "sma:4"),
        rates=(2.0, 5.0) if quick else (2.0, 5.0, 8.0, 12.0),
        slo_s=slo_ms / 1e3,
        max_drop_fraction=0.25,
        session=session,
    )
    slo_rows = [
        [
            point.platform,
            point.rate_hz,
            f"{point.completed}/{point.offered}",
            point.dropped,
            point.p95_s * 1e3,
            point.goodput_fps,
            "yes" if point.meets_slo else "NO",
        ]
        for point in exploration.points
    ]
    print(
        render_table(
            ["platform", "rate_hz", "done/offered", "drops", "p95_ms",
             "goodput_fps", "slo"],
            slo_rows,
            title=f"open-loop SLO exploration: p95 <= {slo_ms:g} ms",
        )
    )
    print()
    for platform, rate in exploration.max_sustainable.items():
        shown = f"{rate:g} Hz/tenant" if rate is not None else "none"
        print(f"max sustainable offered rate on {platform}: {shown}")

    print()
    stats = session.cache_stats
    print(
        f"shared GEMM cache: {stats.hits} hits / {stats.misses} misses"
        f" across the scenario, the sweep, and the SLO exploration"
    )


if __name__ == "__main__":
    main()
