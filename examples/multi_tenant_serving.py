#!/usr/bin/env python
"""Multi-tenant model serving on one temporally-shared GPU.

Three tenants share one SMA device: a latency-critical detector
(Mask R-CNN), a segmentation service (DeepLab), and a best-effort
classifier (VGG-A) that runs every other frame. The timeline scheduler
shares the MAC substrate by priority, tracks per-tenant frame deadlines,
and reports where every microsecond went — then a sweep re-targets the
same scenario across sma:2..4 to size the deployment.

Usage::

    python examples/multi_tenant_serving.py [--quick]
"""

from __future__ import annotations

import sys

from repro.api import ScenarioSpec, Session, StreamSpec
from repro.common.tables import render_table
from repro.sweep import SweepSpec, run_sweep


def build_scenario(frames: int) -> ScenarioSpec:
    return ScenarioSpec(
        name="multi-tenant-serving",
        frames=frames,
        policy="priority",
        streams=(
            StreamSpec(name="detect", model="mask_rcnn", priority=4.0,
                       period_s=0.200, deadline_s=0.250),
            StreamSpec(name="segment", model="deeplab:nocrf", priority=2.0,
                       period_s=0.200, deadline_s=0.400),
            StreamSpec(name="classify", model="vgg_a", priority=1.0,
                       period_s=0.200, skip_interval=2),
        ),
    )


def main() -> None:
    quick = "--quick" in sys.argv[1:]
    frames = 2 if quick else 4
    scenario = build_scenario(frames)
    session = Session()

    report = session.run_scenario(scenario, "sma:3")
    rows = [
        [
            stream.name,
            stream.model,
            stream.priority,
            f"{stream.frames_run}/{frames}",
            stream.busy_s * 1e3,
            stream.stretch,
            stream.mean_latency_s * 1e3,
            stream.deadline_misses,
        ]
        for stream in report.streams
    ]
    print(
        render_table(
            ["tenant", "model", "prio", "frames", "busy_ms", "stretch",
             "mean_lat_ms", "misses"],
            rows,
            title=f"{scenario.name} on sma:3 ({scenario.policy} policy)",
        )
    )
    occupancy = ", ".join(
        f"{kind} {fraction:.0%}"
        for kind, fraction in sorted(report.occupancy.items())
    )
    print()
    print(
        f"makespan {report.makespan_s * 1e3:.1f} ms over {frames} frames;"
        f" occupancy: {occupancy}"
    )
    print(
        "priority sharing: the detector is stretched"
        f" {report.stream('detect').stretch:.2f}x by co-tenants, the"
        f" best-effort classifier {report.stream('classify').stretch:.2f}x."
    )

    # Size the deployment: the same scenario across SMA configurations.
    print()
    result = session.run_sweep(
        SweepSpec(platforms=("sma:2..4",), scenarios=(scenario,))
    )
    sweep_rows = [
        [
            point.request.platform,
            swept.avg_frame_latency_ms,
            swept.stream("detect").deadline_misses,
            swept.stream("segment").deadline_misses,
        ]
        for point, swept in zip(result.grid.points, result.reports)
    ]
    print(
        render_table(
            ["platform", "avg_frame_ms", "detect_misses", "segment_misses"],
            sweep_rows,
            title="deployment sizing: same tenants, sma:2..4",
        )
    )
    print()
    stats = session.cache_stats
    print(
        f"shared GEMM cache: {stats.hits} hits / {stats.misses} misses"
        f" across the scenario and the sweep"
    )


if __name__ == "__main__":
    main()
