#!/usr/bin/env python
"""The Fig 9 autonomous-driving pipeline: DET + TRA + LOC per frame.

Simulates the detection (DeepLab), tracking (GOTURN) and localization
(ORB-SLAM) tasks per frame on the GPU / TC / SMA platforms, then sweeps
the detection skip interval to show the SMA's dynamic-allocation win.

Usage::

    python examples/autonomous_driving.py
"""

from __future__ import annotations

from repro.api import Session
from repro.apps.driving import LATENCY_TARGET_S, DrivingPipeline
from repro.common.tables import render_table


def main() -> None:
    # The pipeline resolves its gpu/tc/sma platforms through the Session,
    # so its GEMM timings share the process-wide cache with other runs.
    pipeline = DrivingPipeline(session=Session())

    rows = []
    for kind in ("gpu", "tc", "sma"):
        result = pipeline.frame_latency(kind)
        rows.append(
            [
                kind.upper(),
                result.latency_ms,
                result.detection_s * 1e3,
                result.tracking_s * 1e3,
                result.localization_s * 1e3,
                "yes" if result.meets_target else "NO",
            ]
        )
    print(
        render_table(
            ["platform", "frame_ms", "DET_ms", "TRA_ms", "LOC_ms",
             f"meets {LATENCY_TARGET_S * 1e3:.0f}ms"],
            rows,
            title="Driving pipeline: detection on every frame",
        )
    )

    print()
    sweep_rows = []
    for interval in range(1, 10):
        tc = pipeline.frame_latency("tc", interval)
        sma = pipeline.frame_latency("sma", interval)
        sweep_rows.append([interval, tc.latency_ms, sma.latency_ms])
    print(
        render_table(
            ["skip_N", "TC_ms", "SMA_ms"],
            sweep_rows,
            title="Detection every N frames (paper Fig 9 right)",
        )
    )
    base = pipeline.frame_latency("sma", 1).latency_s
    at4 = pipeline.frame_latency("sma", 4).latency_s
    print()
    print(
        f"SMA frame latency drops {100 * (1 - at4 / base):.0f}% at N=4 —"
        " the temporal architecture reuses detection's MAC units for"
        " tracking and localization on the skipped frames."
    )


if __name__ == "__main__":
    main()
