#!/usr/bin/env python
"""Worked example of the repro.sweep engine: shard, merge, resume.

Expands one declarative spec — SMA unit counts 2..4 plus the TensorCore
baseline over a handful of square GEMMs — into a content-addressed
request grid, runs it across worker processes, and persists every report
in a sqlite store. Running the script a second time with the same store
resumes: zero simulations, everything served from disk.

Usage::

    python examples/parallel_sweep.py [STORE_PATH] [JOBS]
"""

from __future__ import annotations

import sys

from repro.api import Session, TimingCache
from repro.common.tables import render_table
from repro.sweep import ResultStore, SweepSpec, expand, run_sweep

SIZES = (512, 1024, 2048)


def main(store_path: str = "sweep_example.sqlite", jobs: int = 2) -> None:
    spec = SweepSpec(
        platforms=("sma:2..4", "gpu-tc"),
        gemms=SIZES,
        gemm_dtype="fp16",
        tag="example",
    )
    grid = expand(spec)
    print(f"spec expanded to {len(grid)} requests, e.g.:")
    for point in grid.points[:3]:
        print(f"  {point.request_id}: {point.request.platform}"
              f" {point.request.gemm}")
    print()

    session = Session(cache=TimingCache())
    with ResultStore(store_path) as store:
        result = run_sweep(
            grid, jobs=jobs, store=store, resume=True, session=session
        )
        rows = [
            [
                point.request.platform,
                f"{report.m}x{report.n}x{report.k}",
                report.milliseconds,
                report.tflops,
                "store" if point.request_id in result.loaded else "simulated",
            ]
            for point, report in zip(grid.points, result.reports)
        ]
        print(render_table(
            ["platform", "gemm", "ms", "tflops", "source"],
            rows,
            title=f"{jobs}-worker sweep ({len(result.executed)} simulated,"
                  f" {len(result.loaded)} resumed from {store.path})",
        ))
        print()
        stats = result.cache_stats
        print(f"merged cache: {len(session.cache)} timing entries,"
              f" {stats.window_hits} window hits across workers")
        if result.loaded:
            print("re-run served entirely from the store — delete the"
                  " sqlite file to simulate again")
        else:
            print("run again to see the sweep resume from the store")


if __name__ == "__main__":
    main(
        sys.argv[1] if len(sys.argv) > 1 else "sweep_example.sqlite",
        int(sys.argv[2]) if len(sys.argv) > 2 else 2,
    )
