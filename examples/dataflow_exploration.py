#!/usr/bin/env python
"""Worked example of the paper's Fig 4: TPU vs SMA systolic dataflows.

Streams a small tile through the cycle-level array simulator under the
plain weight-stationary dataflow (TPU) and the semi-broadcast variant
(SMA), showing that both compute the same GEMM while draining C in very
different patterns — full rows (coalesceable into one register-file write)
vs diagonals (scattered) — and what that does to shared-memory banking.

Usage::

    python examples/dataflow_exploration.py
"""

from __future__ import annotations

import numpy as np

from repro.api import Session
from repro.common.tables import render_table
from repro.config import DataType
from repro.gemm.problem import GemmProblem
from repro.systolic.array import SystolicArray
from repro.systolic.dataflow import (
    Dataflow,
    analyze_dataflow_cost,
    output_coords,
    traits_of,
)

M, K, N = 12, 4, 4


def show_functional_equivalence() -> None:
    rng = np.random.default_rng(0)
    a = rng.integers(-3, 4, size=(M, K)).astype(float)
    b = rng.integers(-3, 4, size=(K, N)).astype(float)

    sb = SystolicArray(N, K, Dataflow.SEMI_BROADCAST_WS).run_gemm(a, b)
    ws = SystolicArray(K, N, Dataflow.WEIGHT_STATIONARY).run_gemm(a, b)
    reference = a @ b
    assert np.allclose(sb.c, reference) and np.allclose(ws.c, reference)
    print(f"Both dataflows reproduce A({M}x{K}) @ B({K}x{N}) exactly.")
    print(f"  semi-broadcast: {sb.cycles} cycles "
          f"({sb.weight_load_cycles} load + {sb.streaming_cycles} stream)")
    print(f"  weight-stationary: {ws.cycles} cycles "
          f"(+{ws.streaming_cycles - sb.streaming_cycles} from the diagonal"
          " drain)")


def show_drain_patterns() -> None:
    print()
    print("C drain schedule per cycle (row index of each emitted element):")
    rows = []
    for cycle in range(K - 1, M + K + N):
        sb_out = output_coords(Dataflow.SEMI_BROADCAST_WS, cycle, M, K, N)
        ws_out = output_coords(Dataflow.WEIGHT_STATIONARY, cycle, M, K, N)
        rows.append(
            [
                cycle,
                ",".join(str(m) for m, _n in sb_out) or "-",
                ",".join(str(m) for m, _n in ws_out) or "-",
            ]
        )
    print(render_table(["cycle", "semi-broadcast rows", "TPU-WS rows"], rows))
    print()
    print("Semi-broadcast emits one complete C row per cycle (a single")
    print("coalesced register-file write); the TPU dataflow emits elements")
    print("from different rows each cycle, which cannot coalesce.")


def show_bank_analysis() -> None:
    print()
    rows = []
    for flow in Dataflow:
        traits = traits_of(flow, 8)
        cost = analyze_dataflow_cost(flow, 128, 8, 8)
        rows.append(
            [
                traits.name,
                traits.c_drain,
                cost.contention_factor,
                cost.total_cycles,
            ]
        )
    print(render_table(
        ["dataflow", "C drain", "bank_contention", "cycles_per_tile"],
        rows,
        title="Cost of one 128x8x8 tile on the GPU substrate (paper Fig 7)",
    ))


def show_whole_gemm_impact() -> None:
    """End-to-end cost of the dataflow choice, via the Session facade."""
    print()
    session = Session()
    ws = session.executor("sma:2", dataflow=Dataflow.WEIGHT_STATIONARY)
    rows = []
    for size in (1024, 4096):
        problem = GemmProblem(size, size, size, dtype=DataType.FP16)
        t_sb = session.time_gemm("sma:2", problem)
        t_ws = ws.time_gemm(problem)
        rows.append([size, t_sb.milliseconds, t_ws.seconds * 1e3,
                     t_ws.seconds / t_sb.seconds])
    print(render_table(
        ["size", "semi-broadcast_ms", "weight-stationary_ms", "slowdown"],
        rows,
        title="Whole-GEMM cost of the dataflow choice (2-SMA, paper Fig 7)",
    ))


def main() -> None:
    show_functional_equivalence()
    show_drain_patterns()
    show_bank_analysis()
    show_whole_gemm_impact()


if __name__ == "__main__":
    main()
