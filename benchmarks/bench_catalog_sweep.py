"""Catalog resolution overhead: spec lookup must be effectively free.

The catalog's promise is *data-driven without a toll*: building a
platform through a catalog spec string (``"a100"``, ``"sma@v100:3"``)
adds device lookup, interference wiring, and a content fingerprint on
top of direct construction — all of which together must stay under a
millisecond per build, or catalog-axis sweeps (thousands of builds)
would pay a visible tax over hand-coded platform strings.
"""

import time

from repro.api import build_platform
from repro.catalog.loader import (
    catalog_fingerprint,
    get_device,
    install_default_catalog,
)
from repro.config import GpuConfig, SystemConfig
from repro.platforms.gpu_tc import GpuTcPlatform

#: Catalog resolution may add at most this much per platform build.
CATALOG_OVERHEAD_BUDGET_S = 0.001

ROUNDS = 200


def _timed(fn, rounds=ROUNDS) -> float:
    fn()  # warm-up: first call installs the catalog / imports platforms
    t0 = time.perf_counter()
    for _ in range(rounds):
        fn()
    return (time.perf_counter() - t0) / rounds


def test_catalog_lookup_overhead(benchmark):
    install_default_catalog()
    system = SystemConfig(name="v100-4tc", gpu=GpuConfig())

    def direct():
        return GpuTcPlatform(system=system)

    def via_catalog():
        return build_platform("v100")

    def measure():
        direct_s = _timed(direct)
        catalog_s = _timed(via_catalog)
        lookup_s = _timed(lambda: get_device("a100"))
        fingerprint_s = _timed(lambda: catalog_fingerprint("sma@a100:3"))
        return direct_s, catalog_s, lookup_s, fingerprint_s

    direct_s, catalog_s, lookup_s, fingerprint_s = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    overhead_s = catalog_s - direct_s

    print()
    print(f"direct construction: {direct_s * 1e6:.0f} us")
    print(f"catalog construction: {catalog_s * 1e6:.0f} us")
    print(f"catalog overhead: {overhead_s * 1e6:.0f} us per build")
    print(f"device lookup: {lookup_s * 1e6:.1f} us")
    print(f"spec fingerprint: {fingerprint_s * 1e6:.1f} us")

    assert build_platform("v100").system.gpu == system.gpu
    assert overhead_s < CATALOG_OVERHEAD_BUDGET_S, (
        f"catalog resolution adds {overhead_s * 1e3:.2f} ms per build;"
        f" budget is {CATALOG_OVERHEAD_BUDGET_S * 1e3:.0f} ms"
    )
    assert fingerprint_s < CATALOG_OVERHEAD_BUDGET_S, (
        f"fingerprinting costs {fingerprint_s * 1e3:.2f} ms; budget is"
        f" {CATALOG_OVERHEAD_BUDGET_S * 1e3:.0f} ms"
    )
