"""Cold-vs-warm timing-cache behavior inside one process.

`TimingCache.clear()` drops entries and `reset_stats()` zeroes only the
counters, so one process can measure a cold pass and a warm pass
back-to-back — no fresh interpreter needed.
"""

from repro.api import Session, TimingCache

SIZES = (256, 512, 1024)


def test_cold_vs_warm_cache(benchmark):
    session = Session(cache=TimingCache())

    def cold_then_warm():
        session.cache.clear()
        for n in SIZES:
            session.time_gemm("sma:2", n)
        cold = session.cache.reset_stats()
        for n in SIZES:
            session.time_gemm("sma:2", n)
        warm = session.cache.stats()
        return cold, warm

    cold, warm = benchmark.pedantic(cold_then_warm, rounds=1, iterations=1)
    print()
    print(f"cold: {cold.misses} misses, {cold.window_misses} window misses")
    print(f"warm: {warm.hits} hits ({warm.hit_rate:.0%} hit rate)")
    assert cold.misses == len(SIZES) and cold.hits == 0
    assert warm.hits == len(SIZES) and warm.misses == 0
