"""Scheduler overhead: the timeline engine itself must stay cheap.

The multi-stream scenario path adds a scheduling layer on top of the
(cached) per-op pricing; this benchmark isolates that layer by pre-lowering
a 3-stream scenario's tasks once and then timing only
``TimelineScheduler.run``. Budget: < 50 us of scheduling overhead per op.

Run with::

    pytest benchmarks/bench_scenario_multistream.py --benchmark-only -s
"""

from __future__ import annotations

import time

from repro.api import ScenarioSpec, Session, StreamSpec
from repro.schedule.streams import instantiate_frames
from repro.schedule.timeline import TimelineScheduler

#: Scheduling-overhead budget per op (seconds).
PER_OP_BUDGET_S = 50e-6

SCENARIO = ScenarioSpec(
    name="bench-multistream",
    platform="sma:2",
    frames=4,
    policy="priority",
    streams=(
        StreamSpec(name="det", model="deeplab:nocrf", priority=3.0,
                   skip_interval=4),
        StreamSpec(name="tra", model="goturn", priority=2.0),
        StreamSpec(name="loc", model="orb_slam", priority=1.0,
                   period_s=0.033, deadline_s=0.100),
    ),
)


def _lowered_plan():
    session = Session()
    platform = session.platform(
        SCENARIO.platform, framework_overhead_s=50e-6
    )
    templates = {}
    for stream in SCENARIO.streams:
        platform.reset_schedule_state()
        templates[stream.name] = platform.lower_model(
            session.model(stream.model), stream=stream.name
        )
    return instantiate_frames(SCENARIO, templates)


def test_scheduler_overhead_per_op(benchmark):
    plan = _lowered_plan()
    scheduler = TimelineScheduler(SCENARIO.policy)

    timeline = benchmark.pedantic(
        lambda: scheduler.run(plan.tasks), rounds=5, iterations=1
    )
    assert timeline.makespan_s > 0
    per_op = benchmark.stats.stats.mean / len(plan.tasks)
    print(
        f"\n{len(plan.tasks)} tasks scheduled;"
        f" {per_op * 1e6:.2f} us/op (budget {PER_OP_BUDGET_S * 1e6:.0f} us)"
    )
    assert per_op < PER_OP_BUDGET_S


def test_scheduler_overhead_without_harness():
    """Plain-timer fallback so the budget also gates `pytest benchmarks`
    runs without --benchmark-only."""
    plan = _lowered_plan()
    scheduler = TimelineScheduler(SCENARIO.policy)
    scheduler.run(plan.tasks)  # warm
    start = time.perf_counter()
    rounds = 3
    for _ in range(rounds):
        scheduler.run(plan.tasks)
    per_op = (time.perf_counter() - start) / rounds / len(plan.tasks)
    assert per_op < PER_OP_BUDGET_S
