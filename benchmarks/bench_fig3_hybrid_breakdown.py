"""Fig 3: TPU vs GPU end-to-end breakdown on Mask R-CNN / DeepLab + CRF."""

from benchmarks.conftest import run_and_report
from repro.experiments import run_fig3


def test_fig3_platform_breakdown(benchmark):
    run_and_report(benchmark, run_fig3)
