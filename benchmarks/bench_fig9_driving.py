"""Fig 9: the autonomous-driving pipeline (latency + frame skipping).

The pipeline now runs through the ``repro.schedule`` timeline (scenario
declarations per platform and skip interval), so this benchmark tracks
the end-to-end cost of lowering + scheduling + reporting; the scheduler
layer alone is bounded by ``bench_scenario_multistream.py``.
"""

from benchmarks.conftest import run_and_report
from repro.experiments import run_fig9_left, run_fig9_right


def test_fig9_left_frame_latency(benchmark):
    run_and_report(benchmark, run_fig9_left)


def test_fig9_right_skip_sweep(benchmark):
    run_and_report(benchmark, run_fig9_right)
