"""Serving overhead and the vectorized engine's speedup gate.

Open-loop serving adds two engine-side costs on top of PR 3's timeline
scheduling: QoS review at every event (queued-frame bookkeeping) and the
extra expiry events a ``drop_late`` policy schedules. The first half of
this benchmark times the engine over a saturating Poisson trace with
admission control attached and holds it to the same per-op budget as the
closed-loop scenario benchmark.

The second half is PR 8's headline gate: scheduling a long solo serving
trace with both engines **in the same run** and asserting the vectorized
engine is at least :data:`MIN_SPEEDUP` times faster. The scalar engine
re-scans every frame head at every event (admission review), so its cost
grows quadratically with trace length while the vectorized engine's
condensed solo-chain stepping stays linear — the ratio is a property of
the algorithm, not of machine speed, which is why a ratio gate is stable
enough for CI where an absolute-time gate would not be.

Run with::

    pytest benchmarks/bench_serving_trace.py --benchmark-only -s
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import emit_bench_json

from repro.api import ScenarioSpec, Session, StreamSpec
from repro.schedule.streams import instantiate_frames
from repro.schedule.timeline import TimelineScheduler
from repro.serving import ArrivalSpec, QosSpec, make_qos

#: Scheduling-overhead budget per op (seconds) — same as the closed-loop
#: multistream benchmark: QoS must ride along for free at this scale.
PER_OP_BUDGET_S = 50e-6

#: The vectorized engine must beat the scalar engine by at least this
#: factor on the long-trace scenario below (measured ~112x at 3072
#: frames on the reference container; the ratio grows with trace length).
MIN_SPEEDUP = 100.0

#: Trace length for the speedup gate. Overridable for local smoke runs
#: (the scalar leg is the expensive one — it is the point of the gate).
TRACE_FRAMES = int(os.environ.get("REPRO_BENCH_TRACE_FRAMES", "3072"))

#: Offered well above what the platform sustains, so the queue actually
#: builds and the drop path is exercised, not just the happy path.
SCENARIO = ScenarioSpec(
    name="bench-serving-trace",
    platform="sma:2",
    frames=16,
    policy="priority",
    qos=QosSpec(kind="drop_late"),
    streams=(
        StreamSpec(name="det", model="deeplab:nocrf", priority=3.0,
                   deadline_s=0.100,
                   arrivals=ArrivalSpec(kind="poisson", rate_hz=60.0, seed=1)),
        StreamSpec(name="tra", model="goturn", priority=2.0,
                   deadline_s=0.100,
                   arrivals=ArrivalSpec(kind="mmpp", rate_hz=40.0, seed=2)),
        StreamSpec(name="loc", model="orb_slam", priority=1.0,
                   deadline_s=0.100,
                   arrivals=ArrivalSpec(kind="poisson", rate_hz=60.0, seed=3)),
    ),
)

#: The speedup scenario: one saturating stream, so completions form long
#: solo dependency chains the vectorized engine condenses, while the
#: scalar engine still pays its per-event head scan across all
#: ``TRACE_FRAMES`` frames.
TRACE_SCENARIO = ScenarioSpec(
    name="bench-engine-speedup",
    platform="sma:2",
    frames=TRACE_FRAMES,
    policy="fifo",
    qos=QosSpec(kind="drop_late"),
    streams=(
        StreamSpec(name="tra", model="alexnet", priority=1.0,
                   deadline_s=0.050,
                   arrivals=ArrivalSpec(kind="poisson", rate_hz=120.0, seed=2)),
    ),
)


def _lowered_plan(scenario=SCENARIO):
    session = Session()
    platform = session.platform(
        scenario.platform, framework_overhead_s=50e-6
    )
    templates = {}
    for stream in scenario.streams:
        platform.reset_schedule_state()
        templates[stream.name] = platform.lower_model(
            session.model(stream.model), stream=stream.name
        )
    return instantiate_frames(scenario, templates)


def test_serving_overhead_per_op(benchmark):
    plan = _lowered_plan()
    scheduler = TimelineScheduler(
        SCENARIO.policy, qos=make_qos(SCENARIO.qos)
    )

    timeline = benchmark.pedantic(
        lambda: scheduler.run(plan.tasks), rounds=5, iterations=1
    )
    assert timeline.makespan_s > 0
    assert timeline.drops, "saturating trace must exercise the drop path"
    per_op = benchmark.stats.stats.mean / len(plan.tasks)
    print(
        f"\n{len(plan.tasks)} tasks scheduled, {len(timeline.drops)}"
        f" dropped; {per_op * 1e6:.2f} us/op"
        f" (budget {PER_OP_BUDGET_S * 1e6:.0f} us)"
    )
    assert per_op < PER_OP_BUDGET_S


def test_serving_overhead_without_harness():
    """Plain-timer fallback so the budget also gates `pytest benchmarks`
    runs without --benchmark-only."""
    plan = _lowered_plan()
    scheduler = TimelineScheduler(
        SCENARIO.policy, qos=make_qos(SCENARIO.qos)
    )
    timeline = scheduler.run(plan.tasks)  # warm
    assert timeline.drops
    start = time.perf_counter()
    rounds = 3
    for _ in range(rounds):
        scheduler.run(plan.tasks)
    per_op = (time.perf_counter() - start) / rounds / len(plan.tasks)
    assert per_op < PER_OP_BUDGET_S


def test_engine_speedup_same_run():
    """Both engines, same trace, same process: vectorized >= 100x scalar.

    Also pins output parity — the ratio would be meaningless if the fast
    engine computed a different schedule.
    """
    plan = _lowered_plan(TRACE_SCENARIO)
    elapsed = {}
    timelines = {}
    for engine in ("vectorized", "scalar"):
        scheduler = TimelineScheduler(
            TRACE_SCENARIO.policy,
            qos=make_qos(TRACE_SCENARIO.qos),
            engine=engine,
        )
        start = time.perf_counter()
        timelines[engine] = scheduler.run(plan.tasks)
        elapsed[engine] = time.perf_counter() - start

    assert timelines["vectorized"] == timelines["scalar"], (
        "engines diverged on the speedup trace"
    )
    speedup = elapsed["scalar"] / elapsed["vectorized"]
    per_op = elapsed["vectorized"] / len(plan.tasks)
    print(
        f"\n{len(plan.tasks)} tasks x2 engines:"
        f" vectorized {elapsed['vectorized']:.3f}s,"
        f" scalar {elapsed['scalar']:.3f}s -> {speedup:.1f}x"
    )
    emit_bench_json(
        "serving_trace",
        ops=len(plan.tasks),
        seconds=elapsed["vectorized"],
        extra={
            "scalar_seconds": round(elapsed["scalar"], 6),
            "speedup": round(speedup, 2),
            "frames": TRACE_FRAMES,
        },
    )
    if TRACE_FRAMES >= 3072:
        assert speedup >= MIN_SPEEDUP, (
            f"vectorized engine only {speedup:.1f}x faster"
            f" (gate {MIN_SPEEDUP:.0f}x)"
        )
    assert per_op < PER_OP_BUDGET_S
