"""Serving overhead: admission control must not slow the engine down.

Open-loop serving adds two engine-side costs on top of PR 3's timeline
scheduling: QoS review at every event (queued-frame bookkeeping) and the
extra expiry events a ``drop_late`` policy schedules. This benchmark
times the engine over a saturating Poisson trace with admission control
attached and holds it to the same per-op budget as the closed-loop
scenario benchmark.

Run with::

    pytest benchmarks/bench_serving_trace.py --benchmark-only -s
"""

from __future__ import annotations

import time

from repro.api import ScenarioSpec, Session, StreamSpec
from repro.schedule.streams import instantiate_frames
from repro.schedule.timeline import TimelineScheduler
from repro.serving import ArrivalSpec, QosSpec, make_qos

#: Scheduling-overhead budget per op (seconds) — same as the closed-loop
#: multistream benchmark: QoS must ride along for free at this scale.
PER_OP_BUDGET_S = 50e-6

#: Offered well above what the platform sustains, so the queue actually
#: builds and the drop path is exercised, not just the happy path.
SCENARIO = ScenarioSpec(
    name="bench-serving-trace",
    platform="sma:2",
    frames=16,
    policy="priority",
    qos=QosSpec(kind="drop_late"),
    streams=(
        StreamSpec(name="det", model="deeplab:nocrf", priority=3.0,
                   deadline_s=0.100,
                   arrivals=ArrivalSpec(kind="poisson", rate_hz=60.0, seed=1)),
        StreamSpec(name="tra", model="goturn", priority=2.0,
                   deadline_s=0.100,
                   arrivals=ArrivalSpec(kind="mmpp", rate_hz=40.0, seed=2)),
        StreamSpec(name="loc", model="orb_slam", priority=1.0,
                   deadline_s=0.100,
                   arrivals=ArrivalSpec(kind="poisson", rate_hz=60.0, seed=3)),
    ),
)


def _lowered_plan():
    session = Session()
    platform = session.platform(
        SCENARIO.platform, framework_overhead_s=50e-6
    )
    templates = {}
    for stream in SCENARIO.streams:
        platform.reset_schedule_state()
        templates[stream.name] = platform.lower_model(
            session.model(stream.model), stream=stream.name
        )
    return instantiate_frames(SCENARIO, templates)


def test_serving_overhead_per_op(benchmark):
    plan = _lowered_plan()
    scheduler = TimelineScheduler(
        SCENARIO.policy, qos=make_qos(SCENARIO.qos)
    )

    timeline = benchmark.pedantic(
        lambda: scheduler.run(plan.tasks), rounds=5, iterations=1
    )
    assert timeline.makespan_s > 0
    assert timeline.drops, "saturating trace must exercise the drop path"
    per_op = benchmark.stats.stats.mean / len(plan.tasks)
    print(
        f"\n{len(plan.tasks)} tasks scheduled, {len(timeline.drops)}"
        f" dropped; {per_op * 1e6:.2f} us/op"
        f" (budget {PER_OP_BUDGET_S * 1e6:.0f} us)"
    )
    assert per_op < PER_OP_BUDGET_S


def test_serving_overhead_without_harness():
    """Plain-timer fallback so the budget also gates `pytest benchmarks`
    runs without --benchmark-only."""
    plan = _lowered_plan()
    scheduler = TimelineScheduler(
        SCENARIO.policy, qos=make_qos(SCENARIO.qos)
    )
    timeline = scheduler.run(plan.tasks)  # warm
    assert timeline.drops
    start = time.perf_counter()
    rounds = 3
    for _ in range(rounds):
        scheduler.run(plan.tasks)
    per_op = (time.perf_counter() - start) / rounds / len(plan.tasks)
    assert per_op < PER_OP_BUDGET_S
