"""Ablation: systolic dataflow choice on the GPU substrate (SS III-B).

Compares the paper's semi-broadcast weight-stationary dataflow against the
TPU's plain weight-stationary and an output-stationary reference, both at
the per-tile analysis level and end-to-end through the executor.
"""

from repro.common.tables import render_table
from repro.config import DataType, system_sma
from repro.gemm.executor import GemmExecutor
from repro.gemm.problem import GemmProblem
from repro.systolic.dataflow import Dataflow, analyze_dataflow_cost

PROBLEM = GemmProblem(2048, 2048, 2048, dtype=DataType.FP16)


def _tile_costs():
    return {
        flow.value: analyze_dataflow_cost(flow, 128, 8, 8)
        for flow in Dataflow
    }


def _end_to_end():
    seconds = {}
    for flow in (Dataflow.SEMI_BROADCAST_WS, Dataflow.WEIGHT_STATIONARY):
        executor = GemmExecutor(system_sma(2), "sma", dataflow=flow)
        seconds[flow.value] = executor.time_gemm(PROBLEM).seconds
    return seconds


def test_dataflow_tile_costs(benchmark):
    results = benchmark.pedantic(_tile_costs, rounds=1, iterations=1)
    rows = [
        [name, cost.ideal_streaming_cycles, cost.contention_factor,
         cost.total_cycles]
        for name, cost in results.items()
    ]
    print()
    print(render_table(
        ["dataflow", "ideal_cycles", "contention", "total_cycles"], rows,
        title="Ablation: dataflow cost per 128x8x8 tile",
    ))
    assert (
        results["sbws"].total_cycles
        < results["ws"].total_cycles
    )


def test_dataflow_end_to_end(benchmark):
    results = benchmark.pedantic(_end_to_end, rounds=1, iterations=1)
    ratio = results["ws"] / results["sbws"]
    print()
    print(render_table(
        ["dataflow", "seconds"],
        [[k, v] for k, v in results.items()],
        title=f"Ablation: end-to-end dataflow (ws/sbws = {ratio:.2f})",
    ))
    assert 1.15 <= ratio <= 1.45  # paper: 20-40% slower
