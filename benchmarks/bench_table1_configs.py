"""Table I + the SS IV-A area-overhead claim."""

from benchmarks.conftest import run_and_report
from repro.experiments import run_area_overhead, run_table1


def test_table1_configurations(benchmark):
    run_and_report(benchmark, run_table1)


def test_area_overhead(benchmark):
    run_and_report(benchmark, run_area_overhead)
