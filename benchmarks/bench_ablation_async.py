"""Ablation: asynchronous LSMA vs TC-style strictly synchronous semantics.

SS IV-B: the LSMA instruction "executes asynchronously with respect to
other SIMD instructions" — one warp can put all three systolic units to
work and synchronize once. Under strictly synchronous (TC-like) semantics
the same warp must drain the array after every operation, serializing the
units.
"""

from repro.common.tables import render_table
from repro.config import SmaConfig, volta_gpu
from repro.gpu.sm import KernelSpec, StreamingMultiprocessor
from repro.isa.program import ProgramBuilder
from repro.sma.controller import SystolicControllerModel

STREAM = 128
ROUNDS = 4


def _kernel(sync_per_lsma: bool) -> KernelSpec:
    """One warp drives all 3 units for ROUNDS rounds."""
    builder = ProgramBuilder("async_ablation")
    for reg in (1, 2, 3, 4):
        builder.mov(reg, 0)
    for _round in range(ROUNDS):
        for unit in range(3):
            builder.lsma(1, 2, 3, 4, k_extent=STREAM, unit_id=unit)
            if sync_per_lsma:
                builder.smawait()
        if not sync_per_lsma:
            builder.smawait()
    builder.exit()
    return KernelSpec(
        name=f"async={not sync_per_lsma}",
        programs=[builder.build()],
        lsma_engine=SystolicControllerModel(SmaConfig(units_per_sm=3)),
    )


def _cycles(sync_per_lsma: bool) -> float:
    sm = StreamingMultiprocessor(volta_gpu())
    return sm.run(_kernel(sync_per_lsma)).cycles


def test_async_semantics_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: {
            "asynchronous LSMA (paper)": _cycles(False),
            "synchronous (TC-style)": _cycles(True),
        },
        rounds=1,
        iterations=1,
    )
    async_cycles = results["asynchronous LSMA (paper)"]
    rows = [
        [name, cycles, cycles / async_cycles]
        for name, cycles in results.items()
    ]
    print()
    print(render_table(
        ["semantics", "total_cycles", "vs_async"], rows,
        title=(
            "Ablation: LSMA asynchrony (1 warp driving 3 units,"
            f" {ROUNDS} rounds)"
        ),
    ))
    # Synchronous semantics serialize the three units: ~3x the cycles.
    ratio = results["synchronous (TC-style)"] / async_cycles
    assert 2.5 <= ratio <= 3.5
