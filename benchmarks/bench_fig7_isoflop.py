"""Fig 7: iso-FLOP 2-SMA vs 4-TC, and the dataflow ablation.

Both figures run through the :mod:`repro.sweep` engine; the ``sharded``
variants exercise the 2-worker parallel path (private worker caches,
merged on join) and must reproduce the sequential figures exactly.
"""

from benchmarks.conftest import run_and_report
from repro.experiments import run_fig7_left, run_fig7_right


def test_fig7_left_sma_vs_tc(benchmark):
    run_and_report(benchmark, run_fig7_left)


def test_fig7_right_dataflows(benchmark):
    run_and_report(benchmark, run_fig7_right)


def test_fig7_left_sharded(benchmark):
    run_and_report(benchmark, run_fig7_left, jobs=2)


def test_fig7_right_sharded(benchmark):
    run_and_report(benchmark, run_fig7_right, jobs=2)
