"""Ablation: weight double buffering in the systolic controller.

The repurposed operand collectors hold the next B sub-tile while the
current one streams (paper SS IV-A); exposing the full reload instead
costs array idle cycles at every sub-tile switch.
"""

from repro.common.tables import render_table
from repro.config import SmaConfig
from repro.sma.controller import SystolicControllerModel

STREAM_ROWS = 128


def _cycles_per_lsma(exposed: int) -> float:
    controller = SystolicControllerModel(
        SmaConfig(), weight_load_exposed_cycles=exposed
    )
    return controller.issue(0, STREAM_ROWS, now=0.0).busy_until


def test_weight_double_buffer_ablation(benchmark):
    variants = {
        "fully hidden (ideal)": 0,
        "half exposed (default)": SmaConfig().array_rows // 2,
        "no double buffer": SmaConfig().array_rows,
        "serial reload (2x depth)": 2 * SmaConfig().array_rows,
    }
    results = benchmark.pedantic(
        lambda: {name: _cycles_per_lsma(v) for name, v in variants.items()},
        rounds=1,
        iterations=1,
    )
    ideal = results["fully hidden (ideal)"]
    rows = [[name, cycles, cycles / ideal] for name, cycles in results.items()]
    print()
    print(render_table(
        ["weight staging", "cycles_per_lsma", "vs_ideal"], rows,
        title="Ablation: weight double buffering (128-row LSMA)",
    ))
    assert results["no double buffer"] > results["fully hidden (ideal)"]
    # Even the fully exposed reload costs under 7% at 128-row streams.
    assert results["no double buffer"] / ideal < 1.07
