"""Ablation: warp scheduler under the double-buffered SMA kernel.

SS IV-C: the baseline greedy-then-oldest scheduler can starve one of the
double-buffer warp sets; the SMA round-robin scheduler alternates the sets.
This bench times the same SMA GEMM kernel under gto / lrr / sma_rr.
"""

from repro.common.tables import render_table
from repro.config import DataType, system_sma
from repro.gemm.executor import GemmExecutor
from repro.gemm.problem import GemmProblem

PROBLEM = GemmProblem(2048, 2048, 2048, dtype=DataType.FP16)


def _cycles(scheduler: str) -> float:
    executor = GemmExecutor(system_sma(2), "sma", scheduler=scheduler)
    return executor.time_gemm(PROBLEM).tb_cycles


def test_scheduler_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: {s: _cycles(s) for s in ("gto", "lrr", "sma_rr")},
        rounds=1,
        iterations=1,
    )
    baseline = results["sma_rr"]
    rows = [
        [name, cycles, cycles / baseline] for name, cycles in results.items()
    ]
    print()
    print(render_table(
        ["scheduler", "tb_cycles", "vs_sma_rr"], rows,
        title="Ablation: warp scheduler on the SMA double-buffer kernel",
    ))
    # In our pipeline the kernel is systolic-bound and the loaders are
    # latency-tolerant, so all three policies land within a few percent —
    # the GPGPU-Sim starvation pathology the paper works around does not
    # manifest. We assert the policies stay comparable (no policy may
    # tank the kernel) rather than a strict ordering.
    for name, cycles in results.items():
        assert cycles <= baseline * 1.05, name
