"""Benchmark harness helpers.

Every benchmark regenerates one paper table/figure (DESIGN.md SS4), prints
its rows plus the acceptance checks, and reports the harness runtime via
pytest-benchmark. Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations


def run_and_report(benchmark, runner, *args, **kwargs):
    """Benchmark one experiment runner and print its table."""
    report = benchmark.pedantic(
        runner, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
    print()
    print(report.render())
    assert report.all_passed, [
        criterion for criterion, ok in report.checks.items() if not ok
    ]
    return report
