"""Benchmark harness helpers.

Every benchmark regenerates one paper table/figure (DESIGN.md SS4), prints
its rows plus the acceptance checks, and reports the harness runtime via
pytest-benchmark. Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import json
import os
import resource
from pathlib import Path


def bench_out_dir() -> Path:
    """Directory for machine-readable bench artifacts.

    Overridable via ``REPRO_BENCH_DIR`` so CI can collect the files as
    build artifacts without touching the working tree.
    """
    root = os.environ.get("REPRO_BENCH_DIR")
    if root is None:
        root = Path(__file__).resolve().parent / "out"
    path = Path(root)
    path.mkdir(parents=True, exist_ok=True)
    return path


def peak_rss_bytes() -> int:
    """Peak resident set size of this process (bytes; Linux reports KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def emit_bench_json(name: str, *, ops: int, seconds: float, extra=None) -> Path:
    """Write ``BENCH_<name>.json`` with throughput and memory figures.

    Every perf-gating benchmark calls this so CI has one uniform artifact
    shape to diff against the committed baseline: operations per second,
    microseconds per operation, and the peak RSS at emission time.
    """
    payload = {
        "name": name,
        "ops": int(ops),
        "seconds": round(seconds, 6),
        "ops_per_sec": round(ops / seconds, 3) if seconds > 0 else None,
        "us_per_op": round(seconds / ops * 1e6, 3) if ops else None,
        "peak_rss_bytes": peak_rss_bytes(),
    }
    if extra:
        payload.update(extra)
    path = bench_out_dir() / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def run_and_report(benchmark, runner, *args, **kwargs):
    """Benchmark one experiment runner and print its table."""
    report = benchmark.pedantic(
        runner, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
    print()
    print(report.render())
    assert report.all_passed, [
        criterion for criterion, ok in report.checks.items() if not ok
    ]
    return report
