"""Million-frame streaming gate: trace length must not bound memory.

The streaming serving path (:func:`repro.serving.streaming.serve_streaming`)
consumes arrivals lazily, injects each frame's tasks just in time, folds
retired frames into O(1) per-stream accumulators (P² latency sketches),
and prunes their engine state. This benchmark drives a one-million-frame
Poisson trace through it and gates three properties:

* **wall clock** — the whole trace schedules within :data:`WALL_BUDGET_S`
  (a materialized run would first spend minutes and gigabytes just
  expanding the task list);
* **bounded live state** — the engine's peak in-flight task count stays
  at queue-depth scale (hundreds), independent of the million frames;
* **bounded RSS** — the process peak RSS stays flat, which is only
  possible because no per-frame record list is kept.

The template is a deliberately minimal two-op chain so the gate measures
the engine and driver, not model lowering.

Run with::

    pytest benchmarks/bench_million_frames.py -s
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import emit_bench_json, peak_rss_bytes

from repro.api import ScenarioSpec, StreamSpec
from repro.schedule.resources import ResourceClaim, ResourceKind
from repro.schedule.timeline import OpTask
from repro.serving import ArrivalSpec, QosSpec
from repro.serving.streaming import serve_streaming

#: Trace length. Overridable for quick local runs; the gate asserts the
#: full million only when actually run at the full million.
FRAMES = int(os.environ.get("REPRO_BENCH_MILLION_FRAMES", "1000000"))

#: Wall-clock budget for the full trace (measured ~110-160s on the
#: reference container; generous to absorb shared-runner noise).
WALL_BUDGET_S = 420.0

#: Peak in-flight tasks must stay at queue-depth scale. The observed
#: value is ~40; the bound leaves room without ever tolerating
#: trace-length growth.
MAX_PEAK_LIVE = 1000

#: Peak RSS bound — a materialized million-frame trace would need
#: gigabytes for the task list alone.
MAX_RSS_BYTES = 1 << 30

#: Two ops per frame: a SIMD preprocessing step feeding a systolic MAC
#: step, the minimal shape that still exercises dependency chaining and
#: the MAC substrate path.
TEMPLATE = [
    OpTask(
        uid=0,
        name="pre",
        seconds=1 / 512,
        claims=(ResourceClaim(ResourceKind("simd"), fraction=1.0),),
        mode="simd",
    ),
    OpTask(
        uid=1,
        name="mac",
        seconds=1 / 256,
        claims=(ResourceClaim(ResourceKind("array"), fraction=1.0),),
        mode="systolic",
    ),
]

SCENARIO = ScenarioSpec(
    name="bench-million-frames",
    platform="sma:2",
    frames=FRAMES,
    policy="fifo",
    qos=QosSpec(kind="drop_late"),
    streams=(
        StreamSpec(
            name="cam",
            model="synthetic/2op",
            priority=1.0,
            deadline_s=0.050,
            arrivals=ArrivalSpec(kind="poisson", rate_hz=120.0, seed=11),
        ),
    ),
)


def test_million_frame_stream():
    stats: dict = {}
    start = time.perf_counter()
    report = serve_streaming(
        SCENARIO,
        {"cam": TEMPLATE},
        platform=SCENARIO.platform,
        stats_out=stats,
    )
    elapsed = time.perf_counter() - start
    rss = peak_rss_bytes()

    stream = report.streams[0]
    assert stream.offered == FRAMES
    assert stream.completed + stream.dropped == FRAMES
    assert stream.frames == (), "streaming must not keep per-frame records"
    assert stream.sketches is not None, "percentiles must come from sketches"

    per_frame_us = elapsed / FRAMES * 1e6
    print(
        f"\n{FRAMES} frames in {elapsed:.1f}s ({per_frame_us:.1f} us/frame),"
        f" {stats['events']} events, peak_live={stats['peak_live']},"
        f" peak RSS {rss / (1 << 20):.0f} MiB"
    )
    emit_bench_json(
        "million_frames",
        ops=FRAMES,
        seconds=elapsed,
        extra={
            "events": stats["events"],
            "peak_live": stats["peak_live"],
            "completed": stream.completed,
            "dropped": stream.dropped,
        },
    )

    assert stats["peak_live"] <= MAX_PEAK_LIVE, (
        f"live task window grew to {stats['peak_live']}"
    )
    assert rss <= MAX_RSS_BYTES, f"peak RSS {rss} exceeds bound"
    if FRAMES >= 1_000_000:
        assert elapsed <= WALL_BUDGET_S, (
            f"million-frame trace took {elapsed:.1f}s"
            f" (budget {WALL_BUDGET_S:.0f}s)"
        )
