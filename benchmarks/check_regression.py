"""Gate BENCH_*.json artifacts against the committed baseline.

Usage::

    python benchmarks/check_regression.py benchmarks/baseline.json <bench-dir>

The baseline maps each benchmark name to its reference figures:

* ``us_per_op`` — the committed per-op cost. A measured value more than
  ``tolerance`` (relative, default 0.20) above it fails the gate.
  Baselines are pinned at the *generous* end of the observed range on
  the reference container, so the +20% headroom flags real regressions
  rather than shared-runner noise. Lower is always fine — ratchet the
  baseline down when an optimization lands.
* ``min`` — optional floor checks on extra keys the benchmark emitted
  (e.g. the engine ``speedup`` ratio, which is machine-independent and
  therefore gated exactly).

Exit status 1 on any regression or missing artifact, 0 otherwise.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def check(baseline_path: str, bench_dir: str) -> int:
    baseline = json.loads(Path(baseline_path).read_text())
    out = Path(bench_dir)
    failures = []
    for name, reference in sorted(baseline.items()):
        artifact = out / f"BENCH_{name}.json"
        if not artifact.is_file():
            failures.append(f"{name}: missing artifact {artifact}")
            continue
        measured = json.loads(artifact.read_text())
        tolerance = float(reference.get("tolerance", 0.20))
        limit = float(reference["us_per_op"]) * (1.0 + tolerance)
        got = float(measured["us_per_op"])
        verdict = "ok" if got <= limit else "REGRESSION"
        print(
            f"{name}: {got:.2f} us/op vs baseline"
            f" {reference['us_per_op']:.2f} (+{tolerance:.0%} ->"
            f" limit {limit:.2f}) [{verdict}]"
        )
        if got > limit:
            failures.append(
                f"{name}: {got:.2f} us/op exceeds limit {limit:.2f}"
            )
        for key, floor in reference.get("min", {}).items():
            value = measured.get(key)
            if value is None or float(value) < float(floor):
                failures.append(
                    f"{name}: {key}={value} below required {floor}"
                )
            else:
                print(f"{name}: {key}={value} >= {floor} [ok]")
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    sys.exit(check(sys.argv[1], sys.argv[2]))
