"""Cold vs warm submission against a running cluster server.

The cluster's value proposition, measured: the first submission to a
fresh server simulates everything (cold misses); resubmitting the same
grid against the still-running server is answered from the warm pool
cache (hits, no simulations) and must be decisively faster. The status
round-trip also pins the protocol's per-request overhead — the service
must not tax small submissions.
"""

import time

from repro.api import Session, TimingCache
from repro.cluster import ClusterClient, ClusterServer
from repro.sweep import SweepSpec, expand, run_sweep

GRID = expand(SweepSpec(platforms=("sma:2",), gemms=(256, 512, 1024)))

#: Generous loopback budget per status RPC (encode + TCP + decode).
PROTOCOL_OVERHEAD_BUDGET_S = 0.050


def test_cold_vs_warm_submission(benchmark):
    with ClusterServer(jobs=1) as server:
        server.start()
        points = tuple(GRID)

        def cold_then_warm():
            with ClusterClient(server.address) as client:
                t0 = time.perf_counter()
                cold_reports, _ = client.submit_points(points)
                t1 = time.perf_counter()
                warm_reports, warm_delta = client.submit_points(points)
                t2 = time.perf_counter()
                status = client.status()
            return (
                t1 - t0, t2 - t1, cold_reports, warm_reports, warm_delta,
                status,
            )

        cold_s, warm_s, cold_reports, warm_reports, warm_delta, status = (
            benchmark.pedantic(cold_then_warm, rounds=1, iterations=1)
        )

        with ClusterClient(server.address) as client:
            client.status()  # connection + first-call setup out of the loop
            rounds = 25
            t0 = time.perf_counter()
            for _ in range(rounds):
                client.status()
            per_rpc_s = (time.perf_counter() - t0) / rounds

    print()
    print(f"cold submission: {cold_s * 1e3:.1f} ms ({len(points)} points)")
    print(f"warm submission: {warm_s * 1e3:.1f} ms")
    print(f"speedup: {cold_s / warm_s:.1f}x")
    print(f"protocol overhead: {per_rpc_s * 1e6:.0f} us per status RPC")

    local = run_sweep(GRID, session=Session(cache=TimingCache()))
    assert cold_reports == local.report_by_id()
    # Warm answers come from the cache: hits > 0 via /status, no new
    # entries shipped, and identical timings wearing cached=True.
    assert status["cache"]["hits"] >= len(points)
    assert len(warm_delta.timings) == 0
    assert all(report.cached for report in warm_reports.values())
    assert {rid: r.seconds for rid, r in warm_reports.items()} == {
        rid: r.seconds for rid, r in cold_reports.items()
    }
    assert warm_s < cold_s / 2, (
        f"warm submission ({warm_s * 1e3:.1f} ms) should beat cold"
        f" ({cold_s * 1e3:.1f} ms) by at least 2x"
    )
    assert per_rpc_s < PROTOCOL_OVERHEAD_BUDGET_S, (
        f"status RPC costs {per_rpc_s * 1e3:.2f} ms; budget is"
        f" {PROTOCOL_OVERHEAD_BUDGET_S * 1e3:.0f} ms"
    )
