"""Fig 8: iso-area speedup and energy on the Table II models."""

from benchmarks.conftest import run_and_report
from repro.experiments import run_fig8_energy, run_fig8_speedup


def test_fig8_top_speedup(benchmark):
    run_and_report(benchmark, run_fig8_speedup)


def test_fig8_bottom_energy(benchmark):
    run_and_report(benchmark, run_fig8_energy)
