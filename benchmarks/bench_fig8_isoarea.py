"""Fig 8: iso-area speedup and energy on the Table II models.

The model x platform matrix is one sweep grid; the ``sharded`` variant
runs it across 2 worker processes through :mod:`repro.sweep` and must
satisfy the same acceptance checks as the sequential path.
"""

from benchmarks.conftest import run_and_report
from repro.experiments import run_fig8_energy, run_fig8_speedup


def test_fig8_top_speedup(benchmark):
    run_and_report(benchmark, run_fig8_speedup)


def test_fig8_bottom_energy(benchmark):
    run_and_report(benchmark, run_fig8_energy)


def test_fig8_top_speedup_sharded(benchmark):
    run_and_report(benchmark, run_fig8_speedup, jobs=2)
