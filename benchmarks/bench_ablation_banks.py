"""Ablation: shared-memory banks reserved for the SMA unit's A feed.

The paper assigns 8 banks per unit (SS IV-B). Fewer banks serialize the
diagonal A reads; more buy nothing because the feed is 8 words per cycle.
"""

from repro.common.tables import render_table
from repro.systolic.dataflow import Dataflow, analyze_dataflow_cost


def _feed_cost(banks: int):
    return analyze_dataflow_cost(
        Dataflow.SEMI_BROADCAST_WS,
        m_extent=128,
        k_extent=8,
        n_extent=8,
        a_banks=banks,
        background_sts_words_per_cycle=8.0,
    )


def test_bank_assignment_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: {banks: _feed_cost(banks) for banks in (1, 2, 4, 8, 16, 32)},
        rounds=1,
        iterations=1,
    )
    rows = [
        [banks, cost.a_conflict_degree, cost.effective_streaming_cycles]
        for banks, cost in results.items()
    ]
    print()
    print(render_table(
        ["a_banks", "a_conflict_degree", "streaming_cycles"], rows,
        title="Ablation: shared-memory banks for the A feed (8x8 unit)",
    ))
    # 8 banks make the diagonal feed conflict-free; 4 or fewer serialize.
    assert results[8].a_conflict_degree == 1.0
    assert results[4].a_conflict_degree > 1.0
    assert results[1].a_conflict_degree >= 4.0
    # Extra banks beyond the feed width buy nothing.
    assert results[16].a_conflict_degree == results[8].a_conflict_degree
