"""The observability cost gates: tracing off is free, tracing on is cheap.

The tracer's contract has two halves. Semantically, attaching one never
changes a report (pinned bit-exactly by tests/obs and the fuzz oracle).
Economically, the hooks must be affordable: with no tracer attached the
engine pays one ``is not None`` test per event — indistinguishable from
noise — and with a tracer attached the cost is a bounded tuple append
per event. This benchmark times the same saturating serving trace with
tracing off and on, interleaved in one process, and gates both halves:

* **off**: the disabled hook is priced directly — a tight loop times
  the ``is not None`` guard itself (minimum over repeats), and that
  unit cost times the number of hook firings must stay under
  :data:`MAX_OFF_FRACTION` of the tracing-off wall time. Diffing two
  wall-clock runs of the identical disabled-hooks path cannot resolve
  1% on a shared CI machine (adjacent identical runs routinely differ
  by several percent), but the guard costs ~tens of nanoseconds
  against ~tens of microseconds per event of engine work, so pricing
  it directly leaves orders of magnitude of margin;
* **on**: in the quietest round, the traced run must cost at most
  :data:`MAX_ON_RATIO` times the off runs bracketing it. Ratios are
  taken per round (on vs the offs adjacent in time) and the best round
  gates, so a throttling machine cannot fake an overhead — if tracing
  genuinely cost more than the gate, *every* round would show it.

The legs are interleaved round-robin (off/on/off within every round) so
all three sample the same noise window, the GC is paused around each
timed run, and minima over :data:`ROUNDS` rounds are compared rather
than means — the minimum of repeated identical work converges to the
true cost and shrugs off scheduler hiccups, which is what lets a 1%
gate survive CI.

Run with::

    pytest benchmarks/bench_obs_overhead.py -s
"""

from __future__ import annotations

import gc
import time

from benchmarks.conftest import emit_bench_json

from repro.api import ScenarioSpec, Session, StreamSpec
from repro.obs import Tracer
from repro.schedule.streams import instantiate_frames
from repro.schedule.timeline import TimelineScheduler
from repro.serving import ArrivalSpec, QosSpec, make_qos

#: Tracing-on wall time may be at most this multiple of tracing-off.
MAX_ON_RATIO = 1.15

#: Disabled hooks (one ``is not None`` guard per event) may cost at most
#: this fraction of a tracing-off run.
MAX_OFF_FRACTION = 0.01

#: Timing rounds per leg; each leg keeps its minimum.
ROUNDS = 7

#: The same saturating three-stream trace the serving benchmark gates —
#: drops, queueing, and mode switches all on the hot path, so every
#: tracer hook fires.
SCENARIO = ScenarioSpec(
    name="bench-obs-overhead",
    platform="sma:2",
    frames=16,
    policy="priority",
    qos=QosSpec(kind="drop_late"),
    streams=(
        StreamSpec(name="det", model="deeplab:nocrf", priority=3.0,
                   deadline_s=0.100,
                   arrivals=ArrivalSpec(kind="poisson", rate_hz=60.0, seed=1)),
        StreamSpec(name="tra", model="goturn", priority=2.0,
                   deadline_s=0.100,
                   arrivals=ArrivalSpec(kind="mmpp", rate_hz=40.0, seed=2)),
        StreamSpec(name="loc", model="orb_slam", priority=1.0,
                   deadline_s=0.100,
                   arrivals=ArrivalSpec(kind="poisson", rate_hz=60.0, seed=3)),
    ),
)


def _lowered_plan():
    session = Session()
    platform = session.platform(
        SCENARIO.platform, framework_overhead_s=50e-6
    )
    templates = {}
    for stream in SCENARIO.streams:
        platform.reset_schedule_state()
        templates[stream.name] = platform.lower_model(
            session.model(stream.model), stream=stream.name
        )
    return instantiate_frames(SCENARIO, templates)


def _guard_seconds_per_event(repeats: int = 5, iters: int = 1_000_000):
    """Unit cost of the disabled hook: one ``is not None`` test.

    The loop overhead is deliberately charged to the guard — the
    estimate only needs to be an upper bound.
    """
    tracer = None
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iters):
            if tracer is not None:  # pragma: no cover - never taken
                raise AssertionError
        best = min(best, time.perf_counter() - start)
    return best / iters


def _timed_run(tasks, tracer):
    """One GC-quiesced scheduler run; returns (seconds, timeline)."""
    scheduler = TimelineScheduler(
        SCENARIO.policy, qos=make_qos(SCENARIO.qos), tracer=tracer
    )
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        timeline = scheduler.run(tasks)
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    return elapsed, timeline


def test_tracing_overhead_gates():
    plan = _lowered_plan()
    tasks = plan.tasks
    # Warm caches/allocators off the books.
    TimelineScheduler(
        SCENARIO.policy, qos=make_qos(SCENARIO.qos)
    ).run(tasks)

    on = float("inf")
    bare = traced = tracer = None
    offs: list[float] = []
    ratio = float("inf")
    for _ in range(ROUNDS):
        off_a, timeline = _timed_run(tasks, None)
        offs.append(off_a)
        bare = timeline
        candidate = Tracer()
        elapsed, timeline = _timed_run(tasks, candidate)
        if elapsed < on:
            on, traced, tracer = elapsed, timeline, candidate
        off_b, _timeline = _timed_run(tasks, None)
        offs.append(off_b)
        ratio = min(ratio, elapsed / min(off_a, off_b))

    assert traced == bare, "tracing perturbed the timeline"
    assert tracer.records, "traced leg recorded nothing"

    off = min(offs)
    guard = _guard_seconds_per_event()
    off_fraction = guard * len(tracer.records) / off
    per_op = on / len(tasks)
    print(
        f"\n{len(tasks)} tasks, {len(tracer.records)} events:"
        f" off {off * 1e3:.2f}ms (guard {off_fraction * 100:.3f}%),"
        f" on {on * 1e3:.2f}ms -> {ratio:.3f}x"
    )
    emit_bench_json(
        "obs_overhead",
        ops=len(tasks),
        seconds=on,
        extra={
            "off_seconds": round(off, 6),
            "on_off_ratio": round(ratio, 4),
            "off_guard_fraction": round(off_fraction, 6),
            "events": len(tracer.records),
        },
    )
    assert ratio < MAX_ON_RATIO, (
        f"tracing-on costs {ratio:.3f}x tracing-off"
        f" (gate {MAX_ON_RATIO:.2f}x)"
    )
    assert off_fraction < MAX_OFF_FRACTION, (
        f"disabled hooks cost {off_fraction * 100:.3f}% of a run"
        f" (gate {MAX_OFF_FRACTION * 100:.0f}%)"
    )
    assert per_op > 0
