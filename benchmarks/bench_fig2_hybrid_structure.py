"""Fig 2: hybrid model operator inventory (GEMM vs GEMM-incompatible)."""

from benchmarks.conftest import run_and_report
from repro.experiments import run_fig2_inventory


def test_fig2_operator_inventory(benchmark):
    run_and_report(benchmark, run_fig2_inventory)
