"""Table II: model zoo conv-layer counts."""

from benchmarks.conftest import run_and_report
from repro.experiments import run_table2


def test_table2_model_zoo(benchmark):
    run_and_report(benchmark, run_table2)
