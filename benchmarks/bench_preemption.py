"""Preemption-latency budget for the ``exclusive_preempt`` policy.

The inversion fix's measurable promise: under ``exclusive_preempt`` a
high-priority frame arriving mid low-priority frame waits for the
in-flight *kernel*, never the whole frame. This benchmark schedules a
preemption-heavy multi-stream trace (sparse high-priority arrivals over
a saturating low-priority backlog — the shape that forces deschedules),
asserts the start-delay bound semantically, pins scalar/vectorized
parity, and emits a ``BENCH_preemption.json`` artifact so
``check_regression.py`` gates the engine's per-op cost with the
preemption machinery actually firing.

Run with::

    pytest benchmarks/bench_preemption.py -q -s
"""

from __future__ import annotations

import time

from benchmarks.conftest import emit_bench_json

from repro.api import ScenarioSpec, Session, StreamSpec
from repro.schedule.streams import instantiate_frames
from repro.schedule.timeline import TimelineScheduler
from repro.serving import ArrivalSpec

#: Engine overhead budget per op with preemption review active — same
#: order as the non-preemptive serving benchmarks: the deschedule path
#: must not change the engine's complexity class.
PER_OP_BUDGET_S = 50e-6

#: High-priority stream: sparse periodic arrivals so each frame lands
#: mid-flight of the low-priority backlog below (cadence mirrors the
#: ``preemption_storm`` fuzz family).
FRAMES = 96

SCENARIO = ScenarioSpec(
    name="bench-preemption",
    platform="sma:2",
    frames=FRAMES,
    policy="exclusive_preempt",
    streams=(
        StreamSpec(name="hot", model="goturn", priority=3.0,
                   arrivals=ArrivalSpec(kind="fixed", rate_hz=8.0)),
        StreamSpec(name="bulk-a", model="alexnet", priority=2.0,
                   arrivals=ArrivalSpec(kind="fixed", rate_hz=120.0)),
        StreamSpec(name="bulk-b", model="deeplab:nocrf", priority=1.0,
                   arrivals=ArrivalSpec(kind="fixed", rate_hz=120.0)),
    ),
)


def _lowered_plan():
    session = Session()
    platform = session.platform(
        SCENARIO.platform, framework_overhead_s=50e-6
    )
    templates = {}
    for stream in SCENARIO.streams:
        platform.reset_schedule_state()
        templates[stream.name] = platform.lower_model(
            session.model(stream.model), stream=stream.name
        )
    return instantiate_frames(SCENARIO, templates)


def test_preemption_latency_budget():
    """Deschedule latency is kernel-bounded; per-op cost is gated.

    ``exclusive_preempt`` runs one task at a time, so a newly released
    high-priority head waits for at most the in-flight kernel (plus the
    substrate switch charge) before its first segment starts. The bound
    is computed from the lowered plan itself — the longest single kernel
    — so it tracks the models, not a hand-tuned constant.
    """
    plan = _lowered_plan()
    elapsed = {}
    timelines = {}
    for engine in ("vectorized", "scalar"):
        scheduler = TimelineScheduler(SCENARIO.policy, engine=engine)
        start = time.perf_counter()
        timelines[engine] = scheduler.run(plan.tasks)
        elapsed[engine] = time.perf_counter() - start
    timeline = timelines["vectorized"]

    assert timelines["scalar"] == timeline, (
        "engines diverged on the preemption trace"
    )
    descheds = [
        record for record in timeline.preemptions
        if record.action == "deschedule"
    ]
    assert descheds, "trace must actually exercise the deschedule path"

    # Kernel bound: longest single task anywhere in the plan, plus the
    # worst-case cross-stream substrate switch charge.
    kernel_bound = max(task.seconds for task in plan.tasks)
    switch_bound = max(
        (task.cross_switch_s for task in plan.tasks), default=0.0
    )
    bound = kernel_bound + switch_bound + 1e-9

    first_start = {}
    for segment in timeline.segments:
        if segment.uid not in first_start:
            first_start[segment.uid] = segment.start_s
    delays = []
    for run in plan.runs:
        if run.stream != "hot":
            continue
        head = run.uids[0]
        if head in first_start:
            delays.append(first_start[head] - run.release_s)
    assert delays, "high-priority frames must have run"
    max_delay = max(delays)
    assert max_delay <= bound, (
        f"high-priority start delay {max_delay * 1e3:.3f} ms exceeds the"
        f" one-kernel bound {bound * 1e3:.3f} ms — priority inversion"
    )

    per_op = elapsed["vectorized"] / len(plan.tasks)
    print(
        f"\n{len(plan.tasks)} tasks, {len(descheds)} deschedules;"
        f" max high-prio start delay {max_delay * 1e3:.3f} ms"
        f" (kernel bound {bound * 1e3:.3f} ms);"
        f" {per_op * 1e6:.2f} us/op (budget {PER_OP_BUDGET_S * 1e6:.0f} us)"
    )
    emit_bench_json(
        "preemption",
        ops=len(plan.tasks),
        seconds=elapsed["vectorized"],
        extra={
            "scalar_seconds": round(elapsed["scalar"], 6),
            "deschedules": len(descheds),
            "max_start_delay_s": round(max_delay, 9),
            "kernel_bound_s": round(bound, 9),
            "frames": FRAMES,
        },
    )
    assert per_op < PER_OP_BUDGET_S
