"""Fuzz campaign throughput: local batch rate and corpus resume payoff.

Two properties the nightly campaign relies on, measured: the per-case
cost of a seeded batch (generation + simulation + the full oracle pack)
stays small enough that a thousand-case campaign fits a nightly window,
and resuming against a populated corpus answers from sqlite without
re-simulating — so an interrupted campaign never repeats work.
"""

import time

from repro.fuzz.campaign import CorpusStore, run_campaign

CAMPAIGN_SEED = 7
BATCH = 16

#: A nightly 1000-case campaign must finish inside an hour; per-case
#: budget with deep oracles (determinism/trace/merge re-runs) and
#: shrinking headroom.
PER_CASE_BUDGET_S = 3.0


def test_campaign_rate_and_resume(benchmark, tmp_path):
    path = tmp_path / "corpus.sqlite"

    def cold_then_resumed():
        with CorpusStore(path) as store:
            t0 = time.perf_counter()
            cold = run_campaign(
                CAMPAIGN_SEED, BATCH, store=store, resume=True
            )
            t1 = time.perf_counter()
            resumed = run_campaign(
                CAMPAIGN_SEED, BATCH, store=store, resume=True
            )
            t2 = time.perf_counter()
        return t1 - t0, t2 - t1, cold, resumed

    cold_s, resumed_s, cold, resumed = benchmark.pedantic(
        cold_then_resumed, rounds=1, iterations=1
    )

    per_case_s = cold_s / BATCH
    print()
    print(f"cold campaign: {cold_s:.2f} s ({BATCH} cases,"
          f" {per_case_s * 1e3:.0f} ms/case)")
    print(f"resumed campaign: {resumed_s * 1e3:.1f} ms (all from corpus)")
    print(f"resume speedup: {cold_s / resumed_s:.1f}x")
    for family, count in sorted(cold.families().items()):
        print(f"  {family:16s} {count}")

    assert cold.ok and resumed.ok
    assert cold.executed == BATCH and cold.loaded == 0
    assert resumed.executed == 0 and resumed.loaded == BATCH
    assert [r.to_dict() for r in resumed.records] == [
        r.to_dict() for r in cold.records
    ]
    assert per_case_s < PER_CASE_BUDGET_S, (
        f"{per_case_s:.2f} s/case blows the {PER_CASE_BUDGET_S:.0f} s"
        " nightly budget"
    )
    assert resumed_s < cold_s / 2, (
        f"resume ({resumed_s * 1e3:.0f} ms) should beat re-running"
        f" ({cold_s * 1e3:.0f} ms) by at least 2x"
    )
