"""Ablation: FP32 8x8 vs FP16 8x16 SMA units (SS IV-A pairing).

The FP16 pairing doubles the array width from the same MAC area, but the
wider sub-tiles change the quantization of Btile slices over the units.
"""

from repro.common.tables import render_table
from repro.config import DataType, system_sma
from repro.gemm.executor import GemmExecutor
from repro.gemm.problem import GemmProblem


def _throughput(units: int, dtype: DataType):
    system = system_sma(units, dtype)
    executor = GemmExecutor(system, "sma")
    problem = GemmProblem(4096, 4096, 4096, dtype=dtype)
    timing = executor.time_gemm(problem)
    return timing.tflops, timing.sm_efficiency


def test_precision_ablation(benchmark):
    def sweep():
        return {
            (units, dtype.value): _throughput(units, dtype)
            for units in (2, 3)
            for dtype in (DataType.FP32, DataType.FP16, DataType.INT8)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [f"{units}-SMA", dtype, tflops, eff]
        for (units, dtype), (tflops, eff) in results.items()
    ]
    print()
    print(render_table(
        ["config", "dtype", "tflops", "sm_efficiency"], rows,
        title="Ablation: SMA unit precision (4096^3 GEMM)",
    ))
    # FP16 doubles throughput at equal area for the 2-unit config.
    t32, _ = results[(2, "fp32")]
    t16, _ = results[(2, "fp16")]
    assert 1.7 <= t16 / t32 <= 2.2
    # INT8 packs four lanes per physical MAC (SS IV-A extension), but the
    # wider sub-tiles leave only 2 LSMA rounds per K-iteration, so the
    # fixed per-iteration synchronization caps the gain below the 4x peak.
    t8, _ = results[(2, "int8")]
    assert 2.2 <= t8 / t32 <= 4.5
    # 16 FP32 sub-tiles over 3 units quantize worse than over 2 units.
    _, eff2 = results[(2, "fp16")]
    _, eff3 = results[(3, "fp16")]
    assert eff3 < eff2
