"""Fig 1: TPU vs TensorCore FLOPS efficiency on square GEMMs."""

from benchmarks.conftest import run_and_report
from repro.experiments import run_fig1


def test_fig1_efficiency_curves(benchmark):
    run_and_report(benchmark, run_fig1)
